//! The per-node flow cache of §III.D: a hash table from flow identifier to
//! action list that spares most packets the multi-field policy lookup, with
//! soft-state expiry and negative caching, extended with the label fields
//! of §III.E.

use std::fmt;

use sdm_netsim::{FiveTuple, Label, SimTime};
use sdm_util::FxHashMap;

use crate::action::ActionList;
use crate::policy::PolicyId;

/// What the cache knows about one flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowEntry {
    /// The action list to apply; `None` is the negative-cache marker
    /// `⟨f, null⟩` — the flow matches no policy and is forwarded untouched.
    pub action: Option<(PolicyId, ActionList)>,
    /// The locally-unique steering label assigned by a proxy (§III.E).
    pub label: Option<Label>,
    /// Set once the proxy received the label-ready control packet; from
    /// then on packets are label-switched instead of tunneled.
    pub label_switched: bool,
    /// The first-hop middlebox (raw id) this flow was steered to when the
    /// entry was created. Pinning it here makes live flows *sticky*: a
    /// later weight update re-steers only new flows, so mid-epoch packets
    /// never re-classify onto a different box (§III.B flow stickiness,
    /// preserved across the §III.C re-steer control loop).
    pub pinned_next: Option<u32>,
    last_seen: SimTime,
}

impl FlowEntry {
    /// True if this is a negative (no-policy) entry.
    pub fn is_negative(&self) -> bool {
        self.action.is_none()
    }
}

/// Outcome counters of a flow table, for the cache-effectiveness ablation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowTableStats {
    /// Weighted lookups that found a live entry.
    pub hits: u64,
    /// The subset of `hits` that landed on a negative (`⟨f, null⟩`) entry —
    /// packets spared the policy lookup only to be forwarded untouched.
    pub negative_hits: u64,
    /// Weighted lookups that found nothing (or only an expired entry).
    pub misses: u64,
    /// Entries dropped by soft-state expiry.
    pub expired: u64,
}

impl FlowTableStats {
    /// Adds another table's counters into this one (used when merging the
    /// per-shard tables of a flow-sharded run).
    pub fn merge(&mut self, other: &FlowTableStats) {
        self.hits += other.hits;
        self.negative_hits += other.negative_hits;
        self.misses += other.misses;
        self.expired += other.expired;
    }
}

/// Soft-state flow cache: `⟨f, a⟩` pairs keyed by 5-tuple, timed out after
/// `ttl` ticks without a matching packet (§III.D).
///
/// Expiry boundary: an entry last refreshed at time `t` is alive for
/// lookups at `t .. t + ttl - 1` and expired from `t + ttl` on — i.e. it
/// lives for exactly `ttl` ticks. [`FlowTable::lookup`] and
/// [`FlowTable::purge_expired`] apply the same rule, so a purge followed
/// by a lookup at the same `now` can never resurrect an entry.
///
/// # Example
///
/// ```
/// use sdm_policy::{FlowTable, ActionList, NetworkFunction, PolicyId};
/// use sdm_netsim::{FiveTuple, Protocol, SimTime};
///
/// let mut table = FlowTable::new(100);
/// let ft = FiveTuple {
///     src: "10.0.0.1".parse().unwrap(), dst: "10.1.0.1".parse().unwrap(),
///     src_port: 4000, dst_port: 80, proto: Protocol::Tcp,
/// };
/// assert!(table.lookup(&ft, SimTime(0), 1).is_none());
/// table.insert_positive(ft, PolicyId(0),
///     ActionList::chain([NetworkFunction::Firewall]), SimTime(0));
/// assert!(table.lookup(&ft, SimTime(50), 1).is_some());   // alive
/// assert!(table.lookup(&ft, SimTime(500), 1).is_none());  // expired
/// ```
#[derive(Debug)]
pub struct FlowTable {
    entries: FxHashMap<FiveTuple, FlowEntry>,
    ttl: u64,
    stats: FlowTableStats,
    /// Completed [`FlowTable::sweep`] calls (not part of
    /// [`FlowTableStats`]: sweep cadence is an engine-mechanics detail
    /// that varies with sharding/batching, while the stats struct is
    /// compared bit-for-bit across those corners).
    sweeps: u64,
    /// Latest `now` observed, for the monotonicity debug-assert: lookups
    /// use `now - last_seen` with a saturating subtraction, so a clock
    /// that runs backwards would silently read refreshed-in-the-future
    /// entries as fresh forever instead of failing loudly.
    watermark: SimTime,
    /// Pending keys of the current incremental [`FlowTable::sweep`] cycle;
    /// refilled from the live key set when it runs dry.
    sweep_queue: Vec<FiveTuple>,
}

impl FlowTable {
    /// Creates an empty table whose entries expire `ttl` ticks after their
    /// last matching packet.
    ///
    /// # Panics
    ///
    /// Panics if `ttl == 0`.
    pub fn new(ttl: u64) -> Self {
        assert!(ttl > 0, "flow-table ttl must be positive");
        FlowTable {
            entries: FxHashMap::default(),
            ttl,
            stats: FlowTableStats::default(),
            sweeps: 0,
            watermark: SimTime(0),
            sweep_queue: Vec::new(),
        }
    }

    /// Looks up a flow, refreshing its soft state. `weight` packets are
    /// accounted to the hit/miss counters. Expired entries are removed and
    /// count as misses. An entry expires exactly `ttl` ticks after its
    /// last refresh (see the type-level docs for the boundary rule).
    ///
    /// Debug builds panic if `now` moves backwards across calls; release
    /// builds saturate, which would otherwise mask the error.
    pub fn lookup(&mut self, ft: &FiveTuple, now: SimTime, weight: u64) -> Option<&FlowEntry> {
        debug_assert!(
            now >= self.watermark,
            "flow-table clock moved backwards: {now:?} < {:?}",
            self.watermark
        );
        self.watermark = now;
        // Borrow-checker friendly: decide fate first, then reborrow.
        let fate = match self.entries.get(ft) {
            None => 0u8,
            Some(e) if now.0.saturating_sub(e.last_seen.0) >= self.ttl => 1,
            Some(_) => 2,
        };
        match fate {
            0 => {
                self.stats.misses += weight;
                None
            }
            1 => {
                self.entries.remove(ft);
                self.stats.expired += 1;
                self.stats.misses += weight;
                None
            }
            _ => {
                self.stats.hits += weight;
                // lint:allow(hot-path-panic) — the match arm proved the key present
                let e = self.entries.get_mut(ft).expect("checked above");
                e.last_seen = now;
                if e.action.is_none() {
                    self.stats.negative_hits += weight;
                }
                Some(e)
            }
        }
    }

    /// Vector-path hit accounting: counts `weight` packets as cache hits
    /// *without* probing the map.
    ///
    /// Only valid when the immediately preceding operation on this table
    /// was a [`FlowTable::lookup`] or insert of the **same flow at the
    /// same instant** — i.e. for the run-mates of a consecutive same-flow
    /// run in a batch. The entry is then guaranteed present and already
    /// refreshed at `now`, so a real lookup would be a pure hit whose only
    /// effect is `hits += weight`; this records exactly that, keeping the
    /// counters bit-identical to per-packet lookups while skipping the
    /// hash probe and the action-list clone.
    pub fn record_run_hit(&mut self, weight: u64) {
        self.stats.hits += weight;
    }

    /// [`FlowTable::record_run_hit`] for run-mates of a *negative*-cached
    /// flow: counts the hit **and** its negative subset, keeping the
    /// counters bit-identical to per-packet lookups (which classify each
    /// hit by the entry they land on).
    pub fn record_run_negative_hit(&mut self, weight: u64) {
        self.stats.hits += weight;
        self.stats.negative_hits += weight;
    }

    /// Inserts (or replaces) a positive entry mapping the flow to a policy's
    /// action list.
    pub fn insert_positive(
        &mut self,
        ft: FiveTuple,
        policy: PolicyId,
        actions: ActionList,
        now: SimTime,
    ) {
        self.entries.insert(
            ft,
            FlowEntry {
                action: Some((policy, actions)),
                label: None,
                label_switched: false,
                pinned_next: None,
                last_seen: now,
            },
        );
    }

    /// Inserts the negative marker `⟨f, null⟩` so later packets of the flow
    /// skip the policy table entirely (§III.D).
    pub fn insert_negative(&mut self, ft: FiveTuple, now: SimTime) {
        self.entries.insert(
            ft,
            FlowEntry {
                action: None,
                label: None,
                label_switched: false,
                pinned_next: None,
                last_seen: now,
            },
        );
    }

    /// Attaches a steering label to an existing entry (proxy-side, §III.E).
    /// Returns false if the flow is unknown.
    pub fn set_label(&mut self, ft: &FiveTuple, label: Label) -> bool {
        match self.entries.get_mut(ft) {
            Some(e) => {
                e.label = Some(label);
                true
            }
            None => false,
        }
    }

    /// Reads a flow's pinned next hop without refreshing soft state or
    /// touching the hit/miss counters. Callers must have resolved the flow
    /// with [`FlowTable::lookup`] at the current instant first (so an
    /// expired entry cannot leak a stale pin).
    pub fn pinned_next(&self, ft: &FiveTuple) -> Option<u32> {
        self.entries.get(ft).and_then(|e| e.pinned_next)
    }

    /// Pins the flow's first-hop middlebox so subsequent packets reuse the
    /// same selection even after a weight update (flow stickiness across
    /// re-steer epochs). Returns false if the flow is unknown.
    pub fn pin_next(&mut self, ft: &FiveTuple, next: u32) -> bool {
        match self.entries.get_mut(ft) {
            Some(e) => {
                e.pinned_next = Some(next);
                true
            }
            None => false,
        }
    }

    /// Flags an entry for label switching after the control packet returned
    /// (§III.E). Returns false if the flow is unknown.
    pub fn flag_label_switched(&mut self, ft: &FiveTuple) -> bool {
        match self.entries.get_mut(ft) {
            Some(e) => {
                e.label_switched = true;
                true
            }
            None => false,
        }
    }

    /// Drops every entry not refreshed within the ttl as of `now`; returns
    /// how many were dropped. Uses the same boundary as [`FlowTable::lookup`]:
    /// an entry whose age reached `ttl` is dropped.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        let ttl = self.ttl;
        let before = self.entries.len();
        self.entries
            .retain(|_, e| now.0.saturating_sub(e.last_seen.0) < ttl);
        let dropped = before - self.entries.len();
        self.stats.expired += dropped as u64;
        dropped
    }

    /// Amortized expiry sweep: examines at most `budget` entries per call,
    /// resuming where the previous call stopped, and drops those whose age
    /// reached the ttl (the same boundary as [`FlowTable::lookup`] and
    /// [`FlowTable::purge_expired`]). Returns how many were dropped.
    ///
    /// Unlike `purge_expired` — which walks the *whole* map every call —
    /// each sweep step costs O(budget), so a device on the per-packet path
    /// can keep its table tidy without latency spikes: combined with the
    /// purge-on-lookup that [`FlowTable::lookup`] already performs, a full
    /// pass over the table completes every `ceil(len / budget)` calls.
    /// Entries inserted mid-cycle are picked up by the next cycle; stale
    /// entries are never resurrected (lookup rejects them regardless).
    pub fn sweep(&mut self, now: SimTime, budget: usize) -> usize {
        debug_assert!(
            now >= self.watermark,
            "flow-table clock moved backwards: {now:?} < {:?}",
            self.watermark
        );
        self.watermark = now;
        self.sweeps += 1;
        if self.sweep_queue.is_empty() {
            self.sweep_queue.extend(self.entries.keys().copied());
        }
        let ttl = self.ttl;
        let mut dropped = 0usize;
        for _ in 0..budget {
            let Some(key) = self.sweep_queue.pop() else {
                break;
            };
            // The key may have been removed (or refreshed) since the cycle
            // started; only a still-present, now-stale entry is dropped.
            if let Some(e) = self.entries.get(&key) {
                if now.0.saturating_sub(e.last_seen.0) >= ttl {
                    self.entries.remove(&key);
                    dropped += 1;
                }
            }
        }
        self.stats.expired += dropped as u64;
        dropped
    }

    /// Live entry count (including possibly-stale entries not yet purged).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss/expiry counters.
    pub fn stats(&self) -> FlowTableStats {
        self.stats
    }

    /// Completed [`FlowTable::sweep`] calls over this table's lifetime.
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }
}

impl fmt::Display for FlowTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flow-table: {} entries, {} hits ({} negative), {} misses, {} expired",
            self.entries.len(),
            self.stats.hits,
            self.stats.negative_hits,
            self.stats.misses,
            self.stats.expired
        )
    }
}

/// Allocates labels that are locally unique among live flows (§III.E: "an
/// extra label field, l, which is locally unique in the table").
///
/// Freed labels are recycled; allocation fails only when all 2^16 labels
/// are simultaneously live.
#[derive(Debug, Default)]
pub struct LabelAllocator {
    next: u32,
    free: Vec<Label>,
    live: u32,
}

impl LabelAllocator {
    /// Creates an allocator with all labels free.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a label, or `None` if the 16-bit space is exhausted.
    pub fn allocate(&mut self) -> Option<Label> {
        if let Some(l) = self.free.pop() {
            self.live += 1;
            return Some(l);
        }
        if self.next > u16::MAX as u32 {
            return None;
        }
        let l = Label(self.next as u16);
        self.next += 1;
        self.live += 1;
        Some(l)
    }

    /// Returns a label to the pool.
    pub fn release(&mut self, label: Label) {
        self.free.push(label);
        self.live = self.live.saturating_sub(1);
    }

    /// Number of labels currently allocated.
    pub fn live(&self) -> u32 {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::NetworkFunction::*;
    use sdm_netsim::Protocol;

    fn ft(sp: u16) -> FiveTuple {
        FiveTuple {
            src: "10.0.0.1".parse().unwrap(),
            dst: "10.1.0.1".parse().unwrap(),
            src_port: sp,
            dst_port: 80,
            proto: Protocol::Tcp,
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut t = FlowTable::new(100);
        assert!(t.lookup(&ft(1), SimTime(0), 1).is_none());
        t.insert_positive(ft(1), PolicyId(3), ActionList::chain([Firewall]), SimTime(0));
        let e = t.lookup(&ft(1), SimTime(10), 5).unwrap();
        assert_eq!(e.action.as_ref().unwrap().0, PolicyId(3));
        assert_eq!(
            t.stats(),
            FlowTableStats { hits: 5, negative_hits: 0, misses: 1, expired: 0 }
        );
    }

    #[test]
    fn soft_state_expires_and_refreshes() {
        let mut t = FlowTable::new(100);
        t.insert_positive(ft(1), PolicyId(0), ActionList::permit(), SimTime(0));
        // refresh at t=90 extends lifetime past t=150
        assert!(t.lookup(&ft(1), SimTime(90), 1).is_some());
        assert!(t.lookup(&ft(1), SimTime(150), 1).is_some());
        // silence until t=300 expires it
        assert!(t.lookup(&ft(1), SimTime(300), 1).is_none());
        assert_eq!(t.len(), 0);
        assert_eq!(t.stats().expired, 1);
    }

    #[test]
    fn negative_caching() {
        let mut t = FlowTable::new(100);
        t.insert_negative(ft(2), SimTime(0));
        let e = t.lookup(&ft(2), SimTime(1), 1).unwrap();
        assert!(e.is_negative());
        assert!(e.action.is_none());
    }

    #[test]
    fn label_lifecycle() {
        let mut t = FlowTable::new(100);
        t.insert_positive(ft(3), PolicyId(0), ActionList::chain([Ids]), SimTime(0));
        assert!(t.set_label(&ft(3), Label(7)));
        assert!(!t.flag_label_switched(&ft(9)));
        assert!(t.flag_label_switched(&ft(3)));
        let e = t.lookup(&ft(3), SimTime(1), 1).unwrap();
        assert_eq!(e.label, Some(Label(7)));
        assert!(e.label_switched);
    }

    #[test]
    fn pin_next_sticks_to_entry() {
        let mut t = FlowTable::new(100);
        t.insert_positive(ft(4), PolicyId(0), ActionList::chain([Firewall]), SimTime(0));
        assert!(!t.pin_next(&ft(9), 2), "unknown flow cannot be pinned");
        assert!(t.pin_next(&ft(4), 2));
        let e = t.lookup(&ft(4), SimTime(1), 1).unwrap();
        assert_eq!(e.pinned_next, Some(2));
        // re-inserting the flow clears the pin (fresh decision)
        t.insert_positive(ft(4), PolicyId(0), ActionList::chain([Firewall]), SimTime(2));
        assert_eq!(t.lookup(&ft(4), SimTime(3), 1).unwrap().pinned_next, None);
    }

    #[test]
    fn purge_expired_bulk() {
        let mut t = FlowTable::new(50);
        for p in 0..10 {
            t.insert_positive(ft(p), PolicyId(0), ActionList::permit(), SimTime(p as u64));
        }
        // at t=56 with ttl 50, entries with last_seen <= 6 have reached
        // age >= ttl and are stale
        let dropped = t.purge_expired(SimTime(56));
        assert_eq!(dropped, 7);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn amortized_sweep_drains_stale_entries_within_budget() {
        let mut t = FlowTable::new(50);
        for p in 0..10 {
            t.insert_positive(ft(p), PolicyId(0), ActionList::permit(), SimTime(p as u64));
        }
        // same stale set as purge_expired_bulk: entries with last_seen <= 6
        let mut dropped = 0;
        let mut calls = 0;
        while calls < 10 {
            dropped += t.sweep(SimTime(56), 3);
            calls += 1;
            if dropped == 7 {
                break;
            }
        }
        assert_eq!(dropped, 7, "sweep must find what purge_expired finds");
        assert_eq!(t.len(), 3);
        assert!(calls >= 3, "budget 3 over 10 entries needs several calls");
        assert_eq!(t.stats().expired, 7);
    }

    #[test]
    fn sweep_spares_live_entries_and_restarts_cycles() {
        let mut t = FlowTable::new(100);
        for p in 0..8 {
            t.insert_positive(ft(p), PolicyId(0), ActionList::permit(), SimTime(0));
        }
        // everything live: a full cycle drops nothing
        for _ in 0..4 {
            assert_eq!(t.sweep(SimTime(50), 2), 0);
        }
        assert_eq!(t.len(), 8);
        // entries refreshed mid-cycle survive the next cycle too
        assert!(t.lookup(&ft(0), SimTime(99), 1).is_some());
        let dropped: usize = (0..8).map(|_| t.sweep(SimTime(100), 1)).sum();
        assert_eq!(dropped + t.len(), 8);
        assert!(t.lookup(&ft(0), SimTime(100), 1).is_some(), "refreshed entry lives");
    }

    #[test]
    fn sweep_agrees_with_lookup_at_the_ttl_boundary() {
        let mut t = FlowTable::new(50);
        t.insert_positive(ft(1), PolicyId(0), ActionList::permit(), SimTime(0));
        t.insert_positive(ft(2), PolicyId(0), ActionList::permit(), SimTime(1));
        // at t=50: ft(1) has age ttl (stale), ft(2) age ttl-1 (live)
        let dropped = t.sweep(SimTime(50), 10) + t.sweep(SimTime(50), 10);
        assert_eq!(dropped, 1);
        assert!(t.lookup(&ft(1), SimTime(50), 1).is_none());
        assert!(t.lookup(&ft(2), SimTime(50), 1).is_some());
    }

    #[test]
    fn stats_merge_adds_counters() {
        let mut a = FlowTableStats { hits: 1, negative_hits: 1, misses: 2, expired: 3 };
        a.merge(&FlowTableStats { hits: 10, negative_hits: 5, misses: 20, expired: 30 });
        assert_eq!(
            a,
            FlowTableStats { hits: 11, negative_hits: 6, misses: 22, expired: 33 }
        );
    }

    #[test]
    fn negative_hits_counted_as_subset_of_hits() {
        let mut t = FlowTable::new(100);
        t.insert_negative(ft(1), SimTime(0));
        t.insert_positive(ft(2), PolicyId(0), ActionList::permit(), SimTime(0));
        assert!(t.lookup(&ft(1), SimTime(1), 4).unwrap().is_negative());
        assert!(!t.lookup(&ft(2), SimTime(1), 2).unwrap().is_negative());
        t.record_run_negative_hit(3); // batched run-mates of ft(1)
        let s = t.stats();
        assert_eq!(s.hits, 9);
        assert_eq!(s.negative_hits, 7, "4 looked up + 3 run-mates");
    }

    #[test]
    fn sweep_calls_are_counted() {
        let mut t = FlowTable::new(100);
        assert_eq!(t.sweeps(), 0);
        t.insert_positive(ft(1), PolicyId(0), ActionList::permit(), SimTime(0));
        let _ = t.sweep(SimTime(1), 4);
        let _ = t.sweep(SimTime(2), 4);
        assert_eq!(t.sweeps(), 2);
    }

    #[test]
    fn expiry_boundary_exact_ttl() {
        // positive entry: alive at age ttl-1, expired at exactly ttl
        let mut t = FlowTable::new(100);
        t.insert_positive(ft(1), PolicyId(0), ActionList::permit(), SimTime(0));
        assert!(t.lookup(&ft(1), SimTime(99), 1).is_some(), "age ttl-1 alive");
        // re-insert to reset last_seen (lookup above refreshed it)
        t.insert_positive(ft(2), PolicyId(0), ActionList::permit(), SimTime(99));
        assert!(t.lookup(&ft(2), SimTime(199), 1).is_none(), "age ttl expired");
        t.insert_positive(ft(3), PolicyId(0), ActionList::permit(), SimTime(199));
        assert!(t.lookup(&ft(3), SimTime(300), 1).is_none(), "age ttl+1 expired");
    }

    #[test]
    fn negative_entries_use_same_boundary() {
        let mut t = FlowTable::new(100);
        t.insert_negative(ft(1), SimTime(0));
        t.insert_negative(ft(2), SimTime(0));
        t.insert_negative(ft(3), SimTime(0));
        assert!(t.lookup(&ft(1), SimTime(99), 1).is_some(), "age ttl-1 alive");
        assert!(t.lookup(&ft(2), SimTime(100), 1).is_none(), "age ttl expired");
        assert!(t.lookup(&ft(3), SimTime(101), 1).is_none(), "age ttl+1 expired");
    }

    #[test]
    fn purge_and_lookup_agree_at_boundary() {
        // purge at the exact expiry tick must drop what lookup would reject
        let mut t = FlowTable::new(50);
        t.insert_positive(ft(1), PolicyId(0), ActionList::permit(), SimTime(0));
        assert_eq!(t.purge_expired(SimTime(50)), 1);
        assert!(t.lookup(&ft(1), SimTime(50), 1).is_none());
        // and keep what lookup would accept
        t.insert_positive(ft(2), PolicyId(0), ActionList::permit(), SimTime(50));
        assert_eq!(t.purge_expired(SimTime(99)), 0);
        assert!(t.lookup(&ft(2), SimTime(99), 1).is_some());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "clock moved backwards")]
    fn non_monotonic_now_panics_in_debug() {
        let mut t = FlowTable::new(100);
        t.insert_positive(ft(1), PolicyId(0), ActionList::permit(), SimTime(0));
        let _ = t.lookup(&ft(1), SimTime(500), 1);
        let _ = t.lookup(&ft(1), SimTime(10), 1); // time ran backwards
    }

    #[test]
    #[should_panic(expected = "ttl")]
    fn zero_ttl_rejected() {
        let _ = FlowTable::new(0);
    }

    #[test]
    fn allocator_unique_and_recycles() {
        let mut a = LabelAllocator::new();
        let l1 = a.allocate().unwrap();
        let l2 = a.allocate().unwrap();
        assert_ne!(l1, l2);
        assert_eq!(a.live(), 2);
        a.release(l1);
        assert_eq!(a.live(), 1);
        let l3 = a.allocate().unwrap();
        assert_eq!(l3, l1); // recycled
    }

    #[test]
    fn allocator_exhausts_at_64k() {
        let mut a = LabelAllocator::new();
        for _ in 0..=u16::MAX as u32 {
            assert!(a.allocate().is_some());
        }
        assert!(a.allocate().is_none());
        a.release(Label(123));
        assert_eq!(a.allocate(), Some(Label(123)));
    }
}
