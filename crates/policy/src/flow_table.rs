//! The per-node flow cache of §III.D: a table from flow identifier to
//! action list that spares most packets the multi-field policy lookup, with
//! soft-state expiry and negative caching, extended with the label fields
//! of §III.E.
//!
//! Since PR 9 the storage layer is the open-addressed [`OaTable`] plus the
//! capacity-capped [`NegativeCache`] (see [`crate::oa_table`]), and positive
//! entries hold a 4-byte [`PolicyClassId`] into a per-table [`ClassInterner`]
//! instead of a cloned action list — SoftCell-style aggregation, so resident
//! state grows with the number of *distinct policies*, not flows.

use std::fmt;

use sdm_netsim::{FiveTuple, Label, SimTime};
use sdm_util::FxHashMap;

use crate::action::ActionList;
use crate::oa_table::{NegativeCache, OaTable, DEFAULT_NEG_SETS};
use crate::policy::PolicyId;

/// Sentinel for the packed `Option<u32>` fields of [`PosEntry`].
const NONE_U32: u32 = u32::MAX;

/// Handle to an interned policy class: one distinct `(policy, action list)`
/// pair a flow can map to. Positive flow entries store this 4-byte id, so a
/// million flows sharing 40 policies keep 40 action lists resident, not a
/// million clones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PolicyClassId(pub u32);

/// Interns `(policy, action list)` pairs into dense [`PolicyClassId`]s.
/// Ids are assigned in first-intern order, so they are deterministic per
/// table (a pure function of the flow-arrival history).
#[derive(Debug, Default)]
pub struct ClassInterner {
    by_policy: FxHashMap<PolicyId, PolicyClassId>,
    classes: Vec<(PolicyId, ActionList)>,
}

impl ClassInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the class id for `policy`, creating it (with a clone of
    /// `actions`) on first sight. A policy's action list is immutable for
    /// the lifetime of an enforcement plan, so the id is a faithful alias.
    pub fn intern(&mut self, policy: PolicyId, actions: &ActionList) -> PolicyClassId {
        if let Some(id) = self.by_policy.get(&policy) {
            return *id;
        }
        let id = PolicyClassId(self.classes.len() as u32);
        self.classes.push((policy, actions.clone()));
        self.by_policy.insert(policy, id);
        id
    }

    /// Resolves a class id back to its `(policy, action list)` pair.
    pub fn resolve(&self, id: PolicyClassId) -> Option<&(PolicyId, ActionList)> {
        self.classes.get(id.0 as usize)
    }

    /// Number of distinct classes interned.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Approximate heap bytes held by the interner.
    pub fn allocated_bytes(&self) -> usize {
        self.classes.capacity() * std::mem::size_of::<(PolicyId, ActionList)>()
            + self.by_policy.capacity()
                * (std::mem::size_of::<PolicyId>() + std::mem::size_of::<PolicyClassId>())
    }
}

/// Resident positive entry: 4-byte class handle plus the packed label /
/// pin / switch fields of §III.E and the soft-state clock.
#[derive(Debug, Clone, Copy)]
struct PosEntry {
    class: PolicyClassId,
    /// `Label` as u32, `NONE_U32` = unassigned.
    label: u32,
    /// Pinned first-hop middlebox raw id, `NONE_U32` = unpinned.
    pinned: u32,
    label_switched: bool,
    last_seen: SimTime,
}

/// What the cache knows about one flow — the owned view [`FlowTable::lookup`]
/// materializes from the packed resident entry (the action list is an `Arc`
/// clone of the interned class, so this stays cheap).
#[derive(Debug, Clone, PartialEq)]
pub struct FlowEntry {
    /// The action list to apply; `None` is the negative-cache marker
    /// `⟨f, null⟩` — the flow matches no policy and is forwarded untouched.
    pub action: Option<(PolicyId, ActionList)>,
    /// The locally-unique steering label assigned by a proxy (§III.E).
    pub label: Option<Label>,
    /// Set once the proxy received the label-ready control packet; from
    /// then on packets are label-switched instead of tunneled.
    pub label_switched: bool,
    /// The first-hop middlebox (raw id) this flow was steered to when the
    /// entry was created. Pinning it here makes live flows *sticky*: a
    /// later weight update re-steers only new flows, so mid-epoch packets
    /// never re-classify onto a different box (§III.B flow stickiness,
    /// preserved across the §III.C re-steer control loop).
    pub pinned_next: Option<u32>,
}

impl FlowEntry {
    /// True if this is a negative (no-policy) entry.
    pub fn is_negative(&self) -> bool {
        self.action.is_none()
    }
}

/// Outcome counters of a flow table, for the cache-effectiveness ablation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowTableStats {
    /// Weighted lookups that found a live entry.
    pub hits: u64,
    /// The subset of `hits` that landed on a negative (`⟨f, null⟩`) entry —
    /// packets spared the policy lookup only to be forwarded untouched.
    pub negative_hits: u64,
    /// Weighted lookups that found nothing (or only an expired entry).
    pub misses: u64,
    /// Entries dropped by soft-state expiry.
    pub expired: u64,
}

impl FlowTableStats {
    /// Adds another table's counters into this one (used when merging the
    /// per-shard tables of a flow-sharded run).
    pub fn merge(&mut self, other: &FlowTableStats) {
        self.hits += other.hits;
        self.negative_hits += other.negative_hits;
        self.misses += other.misses;
        self.expired += other.expired;
    }
}

/// Soft-state flow cache: `⟨f, a⟩` pairs keyed by 5-tuple, timed out after
/// `ttl` ticks without a matching packet (§III.D).
///
/// Expiry boundary: an entry last refreshed at time `t` is alive for
/// lookups at `t .. t + ttl - 1` and expired from `t + ttl` on — i.e. it
/// lives for exactly `ttl` ticks. [`FlowTable::lookup`] and
/// [`FlowTable::purge_expired`] apply the same rule, so a purge followed
/// by a lookup at the same `now` can never resurrect an entry.
///
/// Positive entries live in an open-addressed slab table that grows with
/// incremental rehash; negative markers live in a capacity-capped
/// set-associative cache whose deterministic eviction bounds the memory an
/// exhaustion attack (millions of one-packet no-policy flows) can pin.
/// A flow is resident in at most one of the two structures.
///
/// # Example
///
/// ```
/// use sdm_policy::{FlowTable, ActionList, NetworkFunction, PolicyId};
/// use sdm_netsim::{FiveTuple, Protocol, SimTime};
///
/// let mut table = FlowTable::new(100);
/// let ft = FiveTuple {
///     src: "10.0.0.1".parse().unwrap(), dst: "10.1.0.1".parse().unwrap(),
///     src_port: 4000, dst_port: 80, proto: Protocol::Tcp,
/// };
/// assert!(table.lookup(&ft, SimTime(0), 1).is_none());
/// table.insert_positive(ft, PolicyId(0),
///     ActionList::chain([NetworkFunction::Firewall]), SimTime(0));
/// assert!(table.lookup(&ft, SimTime(50), 1).is_some());   // alive
/// assert!(table.lookup(&ft, SimTime(500), 1).is_none());  // expired
/// ```
#[derive(Debug)]
pub struct FlowTable {
    /// Positive entries (flow -> interned policy class + label fields).
    pos: OaTable<FiveTuple, PosEntry>,
    /// Negative markers, capacity-capped (see [`NegativeCache`]).
    neg: NegativeCache,
    /// Interned `(policy, action list)` classes referenced by `pos`.
    classes: ClassInterner,
    ttl: u64,
    stats: FlowTableStats,
    /// Completed [`FlowTable::sweep`] calls (not part of
    /// [`FlowTableStats`]: sweep cadence is an engine-mechanics detail
    /// that varies with sharding/batching, while the stats struct is
    /// compared bit-for-bit across those corners).
    sweeps: u64,
    /// Latest `now` observed, for the monotonicity debug-assert: lookups
    /// use `now - last_seen` with a saturating subtraction, so a clock
    /// that runs backwards would silently read refreshed-in-the-future
    /// entries as fresh forever instead of failing loudly.
    watermark: SimTime,
    /// Resume position of the budgeted [`FlowTable::sweep`] cursor over
    /// the virtual slot space (positive slab slots, then negative-cache
    /// slots). Replaces the old key-snapshot queue: no allocation per
    /// sweep cycle, regardless of table size.
    sweep_cursor: usize,
}

impl FlowTable {
    /// Creates an empty table whose entries expire `ttl` ticks after their
    /// last matching packet, with the default negative-cache capacity
    /// ([`DEFAULT_NEG_SETS`] sets).
    ///
    /// # Panics
    ///
    /// Panics if `ttl == 0`.
    pub fn new(ttl: u64) -> Self {
        Self::with_negative_sets(ttl, DEFAULT_NEG_SETS)
    }

    /// [`FlowTable::new`] with an explicit negative-cache set count (the
    /// cap is `neg_sets * `[`crate::oa_table::NEG_WAYS`] entries).
    ///
    /// # Panics
    ///
    /// Panics if `ttl == 0` or `neg_sets` is not a power of two.
    pub fn with_negative_sets(ttl: u64, neg_sets: usize) -> Self {
        assert!(ttl > 0, "flow-table ttl must be positive");
        FlowTable {
            pos: OaTable::new(),
            neg: NegativeCache::new(neg_sets),
            classes: ClassInterner::new(),
            ttl,
            stats: FlowTableStats::default(),
            sweeps: 0,
            watermark: SimTime(0),
            sweep_cursor: 0,
        }
    }

    /// Materializes the owned view of a positive entry.
    fn view(&self, e: &PosEntry) -> FlowEntry {
        FlowEntry {
            action: self.classes.resolve(e.class).cloned(),
            label: if e.label == NONE_U32 { None } else { Some(Label(e.label as u16)) },
            label_switched: e.label_switched,
            pinned_next: if e.pinned == NONE_U32 { None } else { Some(e.pinned) },
        }
    }

    /// Looks up a flow, refreshing its soft state. `weight` packets are
    /// accounted to the hit/miss counters. Expired entries are removed and
    /// count as misses. An entry expires exactly `ttl` ticks after its
    /// last refresh (see the type-level docs for the boundary rule).
    ///
    /// Debug builds panic if `now` moves backwards across calls; release
    /// builds saturate, which would otherwise mask the error.
    pub fn lookup(&mut self, ft: &FiveTuple, now: SimTime, weight: u64) -> Option<FlowEntry> {
        debug_assert!(
            now >= self.watermark,
            "flow-table clock moved backwards: {now:?} < {:?}",
            self.watermark
        );
        self.watermark = now;
        // Positive table first (a flow is resident in at most one side).
        // Decide fate on a shared borrow, then re-borrow to apply it.
        let fate = match self.pos.get(ft) {
            None => 0u8,
            Some(e) if now.0.saturating_sub(e.last_seen.0) >= self.ttl => 1,
            Some(_) => 2,
        };
        match fate {
            1 => {
                self.pos.remove(ft);
                self.stats.expired += 1;
                self.stats.misses += weight;
                return None;
            }
            2 => {
                self.stats.hits += weight;
                let view = match self.pos.get_mut(ft) {
                    Some(e) => {
                        e.last_seen = now;
                        let e = *e;
                        self.view(&e)
                    }
                    // Unreachable: fate 2 proved the key present.
                    None => return None,
                };
                return Some(view);
            }
            _ => {}
        }
        // Negative cache.
        match self.neg.last_seen(ft) {
            Some(ls) if now.0.saturating_sub(ls.0) >= self.ttl => {
                self.neg.remove(ft);
                self.stats.expired += 1;
                self.stats.misses += weight;
                None
            }
            Some(_) => {
                self.neg.refresh(ft, now);
                self.stats.hits += weight;
                self.stats.negative_hits += weight;
                Some(FlowEntry {
                    action: None,
                    label: None,
                    label_switched: false,
                    pinned_next: None,
                })
            }
            None => {
                self.stats.misses += weight;
                None
            }
        }
    }

    /// Vector-path hit accounting: counts `weight` packets as cache hits
    /// *without* probing the table.
    ///
    /// Only valid when the immediately preceding operation on this table
    /// was a [`FlowTable::lookup`] or insert of the **same flow at the
    /// same instant** — i.e. for the run-mates of a consecutive same-flow
    /// run in a batch. The entry is then guaranteed present and already
    /// refreshed at `now`, so a real lookup would be a pure hit whose only
    /// effect is `hits += weight`; this records exactly that, keeping the
    /// counters bit-identical to per-packet lookups while skipping the
    /// hash probe and the action-list clone.
    pub fn record_run_hit(&mut self, weight: u64) {
        self.stats.hits += weight;
    }

    /// [`FlowTable::record_run_hit`] for run-mates of a *negative*-cached
    /// flow: counts the hit **and** its negative subset, keeping the
    /// counters bit-identical to per-packet lookups (which classify each
    /// hit by the entry they land on).
    pub fn record_run_negative_hit(&mut self, weight: u64) {
        self.stats.hits += weight;
        self.stats.negative_hits += weight;
    }

    /// Inserts (or replaces) a positive entry mapping the flow to a policy's
    /// action list. The list is interned: the resident entry stores a
    /// 4-byte [`PolicyClassId`], not a clone.
    pub fn insert_positive(
        &mut self,
        ft: FiveTuple,
        policy: PolicyId,
        actions: ActionList,
        now: SimTime,
    ) {
        self.neg.remove(&ft);
        let class = self.classes.intern(policy, &actions);
        self.pos.insert(
            ft,
            PosEntry {
                class,
                label: NONE_U32,
                pinned: NONE_U32,
                label_switched: false,
                last_seen: now,
            },
        );
    }

    /// Inserts the negative marker `⟨f, null⟩` so later packets of the flow
    /// skip the policy table entirely (§III.D). Subject to the negative
    /// cache's capacity cap: a full set deterministically evicts its
    /// stalest marker (an eviction only re-exposes that flow to one policy
    /// lookup — correctness is unaffected).
    pub fn insert_negative(&mut self, ft: FiveTuple, now: SimTime) {
        self.pos.remove(&ft);
        self.neg.insert(ft, now);
    }

    /// Attaches a steering label to an existing *positive* entry
    /// (proxy-side, §III.E; negative flows never carry labels). Returns
    /// false if the flow is unknown or negative-cached.
    pub fn set_label(&mut self, ft: &FiveTuple, label: Label) -> bool {
        match self.pos.get_mut(ft) {
            Some(e) => {
                e.label = label.0 as u32;
                true
            }
            None => false,
        }
    }

    /// Reads a flow's pinned next hop without refreshing soft state or
    /// touching the hit/miss counters. Callers must have resolved the flow
    /// with [`FlowTable::lookup`] at the current instant first (so an
    /// expired entry cannot leak a stale pin).
    pub fn pinned_next(&self, ft: &FiveTuple) -> Option<u32> {
        self.pos
            .get(ft)
            .and_then(|e| if e.pinned == NONE_U32 { None } else { Some(e.pinned) })
    }

    /// Pins the flow's first-hop middlebox so subsequent packets reuse the
    /// same selection even after a weight update (flow stickiness across
    /// re-steer epochs). Only positive entries steer, so only they can be
    /// pinned. Returns false if the flow is unknown or negative-cached.
    pub fn pin_next(&mut self, ft: &FiveTuple, next: u32) -> bool {
        debug_assert!(next != NONE_U32, "u32::MAX is the unpinned sentinel");
        match self.pos.get_mut(ft) {
            Some(e) => {
                e.pinned = next;
                true
            }
            None => false,
        }
    }

    /// Flags an entry for label switching after the control packet returned
    /// (§III.E). Returns false if the flow is unknown or negative-cached.
    pub fn flag_label_switched(&mut self, ft: &FiveTuple) -> bool {
        match self.pos.get_mut(ft) {
            Some(e) => {
                e.label_switched = true;
                true
            }
            None => false,
        }
    }

    /// Drops every entry not refreshed within the ttl as of `now`; returns
    /// how many were dropped. Uses the same boundary as [`FlowTable::lookup`]:
    /// an entry whose age reached `ttl` is dropped.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        let ttl = self.ttl;
        let dropped = self
            .pos
            .retain(|_, e| now.0.saturating_sub(e.last_seen.0) < ttl)
            + self.neg.purge(|ls| now.0.saturating_sub(ls.0) >= ttl);
        self.stats.expired += dropped as u64;
        dropped
    }

    /// Amortized expiry sweep: examines at most `budget` slots per call,
    /// resuming where the previous call stopped, and drops entries whose
    /// age reached the ttl (the same boundary as [`FlowTable::lookup`] and
    /// [`FlowTable::purge_expired`]). Returns how many were dropped.
    ///
    /// The cursor walks the virtual slot space — positive slab slots, then
    /// negative-cache slots — directly, so a sweep cycle is allocation-free
    /// at any table size (the old implementation re-snapshotted the key set
    /// each cycle: an O(n) allocation spike at a million entries). Each
    /// call costs O(budget); combined with the purge-on-lookup that
    /// [`FlowTable::lookup`] already performs, a full pass completes every
    /// `ceil(slots / budget)` calls. Entries inserted mid-cycle into
    /// already-passed slots are picked up by the next cycle; stale entries
    /// are never resurrected (lookup rejects them regardless).
    pub fn sweep(&mut self, now: SimTime, budget: usize) -> usize {
        debug_assert!(
            now >= self.watermark,
            "flow-table clock moved backwards: {now:?} < {:?}",
            self.watermark
        );
        self.watermark = now;
        self.sweeps += 1;
        let pos_slots = self.pos.slot_count();
        let total = pos_slots + self.neg.slot_count();
        let mut dropped = 0usize;
        if total > 0 {
            if self.sweep_cursor >= total {
                self.sweep_cursor = 0;
            }
            let ttl = self.ttl;
            for _ in 0..budget.min(total) {
                let i = self.sweep_cursor;
                self.sweep_cursor = (self.sweep_cursor + 1) % total;
                if i < pos_slots {
                    let stale_key = match self.pos.slot(i) {
                        Some((k, e)) if now.0.saturating_sub(e.last_seen.0) >= ttl => Some(*k),
                        _ => None,
                    };
                    if let Some(k) = stale_key {
                        self.pos.remove(&k);
                        dropped += 1;
                    }
                } else if let Some((k, ls)) = self.neg.slot(i - pos_slots) {
                    if now.0.saturating_sub(ls.0) >= ttl {
                        self.neg.remove(&k);
                        dropped += 1;
                    }
                }
            }
        }
        self.stats.expired += dropped as u64;
        dropped
    }

    /// Live entry count (including possibly-stale entries not yet purged),
    /// positive and negative sides combined.
    pub fn len(&self) -> usize {
        self.pos.len() + self.neg.len()
    }

    /// True if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/expiry counters.
    pub fn stats(&self) -> FlowTableStats {
        self.stats
    }

    /// Completed [`FlowTable::sweep`] calls over this table's lifetime.
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }

    /// Resident negative markers.
    pub fn negative_len(&self) -> usize {
        self.neg.len()
    }

    /// Hard cap on resident negative markers.
    pub fn negative_capacity(&self) -> usize {
        self.neg.capacity()
    }

    /// Negative markers displaced by capacity eviction (an exhaustion
    /// attack shows up here; invariant across power-of-two shard counts,
    /// see [`crate::oa_table`]).
    pub fn negative_evictions(&self) -> u64 {
        self.neg.evictions()
    }

    /// Distinct policy classes interned by this table's positive entries.
    pub fn policy_classes(&self) -> usize {
        self.classes.len()
    }

    /// Heap bytes held by the table (probe arrays, slab, negative sets,
    /// interner) — allocation, not occupancy.
    pub fn allocated_bytes(&self) -> usize {
        self.pos.allocated_bytes() + self.neg.allocated_bytes() + self.classes.allocated_bytes()
    }
}

impl fmt::Display for FlowTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flow-table: {} entries, {} hits ({} negative), {} misses, {} expired",
            self.len(),
            self.stats.hits,
            self.stats.negative_hits,
            self.stats.misses,
            self.stats.expired
        )
    }
}

/// Allocates labels that are locally unique among live flows (§III.E: "an
/// extra label field, l, which is locally unique in the table").
///
/// Freed labels are recycled; allocation fails only when all 2^16 labels
/// are simultaneously live.
#[derive(Debug, Default)]
pub struct LabelAllocator {
    next: u32,
    free: Vec<Label>,
    live: u32,
}

impl LabelAllocator {
    /// Creates an allocator with all labels free.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a label, or `None` if the 16-bit space is exhausted.
    pub fn allocate(&mut self) -> Option<Label> {
        if let Some(l) = self.free.pop() {
            self.live += 1;
            return Some(l);
        }
        if self.next > u16::MAX as u32 {
            return None;
        }
        let l = Label(self.next as u16);
        self.next += 1;
        self.live += 1;
        Some(l)
    }

    /// Returns a label to the pool.
    pub fn release(&mut self, label: Label) {
        self.free.push(label);
        self.live = self.live.saturating_sub(1);
    }

    /// Number of labels currently allocated.
    pub fn live(&self) -> u32 {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::NetworkFunction::*;
    use sdm_netsim::Protocol;

    fn ft(sp: u16) -> FiveTuple {
        FiveTuple {
            src: "10.0.0.1".parse().unwrap(),
            dst: "10.1.0.1".parse().unwrap(),
            src_port: sp,
            dst_port: 80,
            proto: Protocol::Tcp,
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut t = FlowTable::new(100);
        assert!(t.lookup(&ft(1), SimTime(0), 1).is_none());
        t.insert_positive(ft(1), PolicyId(3), ActionList::chain([Firewall]), SimTime(0));
        let e = t.lookup(&ft(1), SimTime(10), 5).unwrap();
        assert_eq!(e.action.as_ref().unwrap().0, PolicyId(3));
        assert_eq!(
            t.stats(),
            FlowTableStats { hits: 5, negative_hits: 0, misses: 1, expired: 0 }
        );
    }

    #[test]
    fn soft_state_expires_and_refreshes() {
        let mut t = FlowTable::new(100);
        t.insert_positive(ft(1), PolicyId(0), ActionList::permit(), SimTime(0));
        // refresh at t=90 extends lifetime past t=150
        assert!(t.lookup(&ft(1), SimTime(90), 1).is_some());
        assert!(t.lookup(&ft(1), SimTime(150), 1).is_some());
        // silence until t=300 expires it
        assert!(t.lookup(&ft(1), SimTime(300), 1).is_none());
        assert_eq!(t.len(), 0);
        assert_eq!(t.stats().expired, 1);
    }

    #[test]
    fn negative_caching() {
        let mut t = FlowTable::new(100);
        t.insert_negative(ft(2), SimTime(0));
        let e = t.lookup(&ft(2), SimTime(1), 1).unwrap();
        assert!(e.is_negative());
        assert!(e.action.is_none());
    }

    #[test]
    fn label_lifecycle() {
        let mut t = FlowTable::new(100);
        t.insert_positive(ft(3), PolicyId(0), ActionList::chain([Ids]), SimTime(0));
        assert!(t.set_label(&ft(3), Label(7)));
        assert!(!t.flag_label_switched(&ft(9)));
        assert!(t.flag_label_switched(&ft(3)));
        let e = t.lookup(&ft(3), SimTime(1), 1).unwrap();
        assert_eq!(e.label, Some(Label(7)));
        assert!(e.label_switched);
    }

    #[test]
    fn pin_next_sticks_to_entry() {
        let mut t = FlowTable::new(100);
        t.insert_positive(ft(4), PolicyId(0), ActionList::chain([Firewall]), SimTime(0));
        assert!(!t.pin_next(&ft(9), 2), "unknown flow cannot be pinned");
        assert!(t.pin_next(&ft(4), 2));
        let e = t.lookup(&ft(4), SimTime(1), 1).unwrap();
        assert_eq!(e.pinned_next, Some(2));
        // re-inserting the flow clears the pin (fresh decision)
        t.insert_positive(ft(4), PolicyId(0), ActionList::chain([Firewall]), SimTime(2));
        assert_eq!(t.lookup(&ft(4), SimTime(3), 1).unwrap().pinned_next, None);
    }

    #[test]
    fn purge_expired_bulk() {
        let mut t = FlowTable::new(50);
        for p in 0..10 {
            t.insert_positive(ft(p), PolicyId(0), ActionList::permit(), SimTime(p as u64));
        }
        // at t=56 with ttl 50, entries with last_seen <= 6 have reached
        // age >= ttl and are stale
        let dropped = t.purge_expired(SimTime(56));
        assert_eq!(dropped, 7);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn amortized_sweep_drains_stale_entries_within_budget() {
        let mut t = FlowTable::new(50);
        for p in 0..10 {
            t.insert_positive(ft(p), PolicyId(0), ActionList::permit(), SimTime(p as u64));
        }
        // same stale set as purge_expired_bulk: entries with last_seen <= 6
        let mut dropped = 0;
        let mut calls = 0;
        while calls < 10 {
            dropped += t.sweep(SimTime(56), 3);
            calls += 1;
            if dropped == 7 {
                break;
            }
        }
        assert_eq!(dropped, 7, "sweep must find what purge_expired finds");
        assert_eq!(t.len(), 3);
        assert!(calls >= 3, "budget 3 over 10 entries needs several calls");
        assert_eq!(t.stats().expired, 7);
    }

    #[test]
    fn sweep_spares_live_entries_and_restarts_cycles() {
        let mut t = FlowTable::new(100);
        for p in 0..8 {
            t.insert_positive(ft(p), PolicyId(0), ActionList::permit(), SimTime(0));
        }
        // everything live: a full cycle drops nothing
        for _ in 0..4 {
            assert_eq!(t.sweep(SimTime(50), 2), 0);
        }
        assert_eq!(t.len(), 8);
        // entries refreshed mid-cycle survive the next cycle too
        assert!(t.lookup(&ft(0), SimTime(99), 1).is_some());
        let dropped: usize = (0..8).map(|_| t.sweep(SimTime(100), 1)).sum();
        assert_eq!(dropped + t.len(), 8);
        assert!(t.lookup(&ft(0), SimTime(100), 1).is_some(), "refreshed entry lives");
    }

    #[test]
    fn sweep_agrees_with_lookup_at_the_ttl_boundary() {
        let mut t = FlowTable::new(50);
        t.insert_positive(ft(1), PolicyId(0), ActionList::permit(), SimTime(0));
        t.insert_positive(ft(2), PolicyId(0), ActionList::permit(), SimTime(1));
        // at t=50: ft(1) has age ttl (stale), ft(2) age ttl-1 (live)
        let dropped = t.sweep(SimTime(50), 10) + t.sweep(SimTime(50), 10);
        assert_eq!(dropped, 1);
        assert!(t.lookup(&ft(1), SimTime(50), 1).is_none());
        assert!(t.lookup(&ft(2), SimTime(50), 1).is_some());
    }

    #[test]
    fn stats_merge_adds_counters() {
        let mut a = FlowTableStats { hits: 1, negative_hits: 1, misses: 2, expired: 3 };
        a.merge(&FlowTableStats { hits: 10, negative_hits: 5, misses: 20, expired: 30 });
        assert_eq!(
            a,
            FlowTableStats { hits: 11, negative_hits: 6, misses: 22, expired: 33 }
        );
    }

    #[test]
    fn negative_hits_counted_as_subset_of_hits() {
        let mut t = FlowTable::new(100);
        t.insert_negative(ft(1), SimTime(0));
        t.insert_positive(ft(2), PolicyId(0), ActionList::permit(), SimTime(0));
        assert!(t.lookup(&ft(1), SimTime(1), 4).unwrap().is_negative());
        assert!(!t.lookup(&ft(2), SimTime(1), 2).unwrap().is_negative());
        t.record_run_negative_hit(3); // batched run-mates of ft(1)
        let s = t.stats();
        assert_eq!(s.hits, 9);
        assert_eq!(s.negative_hits, 7, "4 looked up + 3 run-mates");
    }

    #[test]
    fn sweep_calls_are_counted() {
        let mut t = FlowTable::new(100);
        assert_eq!(t.sweeps(), 0);
        t.insert_positive(ft(1), PolicyId(0), ActionList::permit(), SimTime(0));
        let _ = t.sweep(SimTime(1), 4);
        let _ = t.sweep(SimTime(2), 4);
        assert_eq!(t.sweeps(), 2);
    }

    #[test]
    fn expiry_boundary_exact_ttl() {
        // positive entry: alive at age ttl-1, expired at exactly ttl
        let mut t = FlowTable::new(100);
        t.insert_positive(ft(1), PolicyId(0), ActionList::permit(), SimTime(0));
        assert!(t.lookup(&ft(1), SimTime(99), 1).is_some(), "age ttl-1 alive");
        // re-insert to reset last_seen (lookup above refreshed it)
        t.insert_positive(ft(2), PolicyId(0), ActionList::permit(), SimTime(99));
        assert!(t.lookup(&ft(2), SimTime(199), 1).is_none(), "age ttl expired");
        t.insert_positive(ft(3), PolicyId(0), ActionList::permit(), SimTime(199));
        assert!(t.lookup(&ft(3), SimTime(300), 1).is_none(), "age ttl+1 expired");
    }

    #[test]
    fn negative_entries_use_same_boundary() {
        let mut t = FlowTable::new(100);
        t.insert_negative(ft(1), SimTime(0));
        t.insert_negative(ft(2), SimTime(0));
        t.insert_negative(ft(3), SimTime(0));
        assert!(t.lookup(&ft(1), SimTime(99), 1).is_some(), "age ttl-1 alive");
        assert!(t.lookup(&ft(2), SimTime(100), 1).is_none(), "age ttl expired");
        assert!(t.lookup(&ft(3), SimTime(101), 1).is_none(), "age ttl+1 expired");
    }

    #[test]
    fn purge_and_lookup_agree_at_boundary() {
        // purge at the exact expiry tick must drop what lookup would reject
        let mut t = FlowTable::new(50);
        t.insert_positive(ft(1), PolicyId(0), ActionList::permit(), SimTime(0));
        assert_eq!(t.purge_expired(SimTime(50)), 1);
        assert!(t.lookup(&ft(1), SimTime(50), 1).is_none());
        // and keep what lookup would accept
        t.insert_positive(ft(2), PolicyId(0), ActionList::permit(), SimTime(50));
        assert_eq!(t.purge_expired(SimTime(99)), 0);
        assert!(t.lookup(&ft(2), SimTime(99), 1).is_some());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "clock moved backwards")]
    fn non_monotonic_now_panics_in_debug() {
        let mut t = FlowTable::new(100);
        t.insert_positive(ft(1), PolicyId(0), ActionList::permit(), SimTime(0));
        let _ = t.lookup(&ft(1), SimTime(500), 1);
        let _ = t.lookup(&ft(1), SimTime(10), 1); // time ran backwards
    }

    #[test]
    #[should_panic(expected = "ttl")]
    fn zero_ttl_rejected() {
        let _ = FlowTable::new(0);
    }

    #[test]
    fn policy_classes_are_interned_not_cloned() {
        let mut t = FlowTable::new(100);
        let actions = ActionList::chain([Firewall, Ids]);
        for p in 0..1000u16 {
            // 1000 flows across 3 policies -> 3 resident classes
            t.insert_positive(
                ft(p + 1),
                PolicyId((p % 3) as u32),
                actions.clone(),
                SimTime(0),
            );
        }
        assert_eq!(t.len(), 1000);
        assert_eq!(t.policy_classes(), 3);
        // every flow still resolves to its policy
        let e = t.lookup(&ft(1), SimTime(1), 1).unwrap();
        assert_eq!(e.action.unwrap().0, PolicyId(0));
    }

    #[test]
    fn negative_side_is_capacity_capped() {
        // 2 sets x 8 ways = 16 markers max, however many flows attack
        let mut t = FlowTable::with_negative_sets(1_000_000, 2);
        for p in 0..5000u16 {
            t.insert_negative(ft(p + 1), SimTime(p as u64));
        }
        assert_eq!(t.negative_capacity(), 16);
        assert!(t.negative_len() <= 16);
        assert_eq!(
            t.negative_evictions(),
            5000 - t.negative_len() as u64,
            "every overflow insert evicted exactly one marker"
        );
        assert!(t.len() <= 16, "exhaustion attack cannot grow the table");
    }

    #[test]
    fn eviction_only_costs_a_relookup_not_correctness() {
        let mut t = FlowTable::with_negative_sets(1000, 1);
        // fill one 8-way set, then displace the stalest
        for p in 0..9u16 {
            t.insert_negative(ft(p + 1), SimTime(p as u64));
        }
        // the evicted flow is a miss again (would re-run the classifier);
        // the survivors still hit
        let survivors = (1..=9u16)
            .filter(|p| t.lookup(&ft(*p), SimTime(50), 1).is_some())
            .count();
        assert_eq!(survivors, 8);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn sweep_covers_the_negative_side() {
        let mut t = FlowTable::new(50);
        t.insert_positive(ft(1), PolicyId(0), ActionList::permit(), SimTime(0));
        t.insert_negative(ft(2), SimTime(0));
        t.insert_negative(ft(3), SimTime(40));
        // at t=55 the positive entry and ft(2) are stale, ft(3) lives.
        // one full pass over the virtual slot space:
        let slots = 1 + DEFAULT_NEG_SETS * crate::oa_table::NEG_WAYS;
        let mut dropped = 0;
        let mut budget_left = slots;
        while budget_left > 0 {
            let step = budget_left.min(100_000);
            dropped += t.sweep(SimTime(55), step);
            budget_left -= step;
        }
        assert_eq!(dropped, 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.negative_len(), 1);
    }

    #[test]
    fn sweep_never_allocates() {
        // the old implementation re-snapshotted the key set at each cycle
        // start — an O(n) allocation spike; the cursor walk must keep the
        // table's heap footprint bit-stable across arbitrarily many sweeps
        let mut t = FlowTable::new(50);
        for p in 0..2000u16 {
            t.insert_positive(ft(p + 1), PolicyId(0), ActionList::permit(), SimTime(0));
        }
        let baseline = t.allocated_bytes();
        let slots = t.pos.slot_count() + t.neg.slot_count();
        let mut now = 0u64;
        for _ in 0..5 {
            // several full cycles, mixed budgets, entries expiring mid-walk
            now += 20;
            let mut left = slots;
            while left > 0 {
                let step = left.min(777);
                let _ = t.sweep(SimTime(now), step);
                left -= step;
            }
            // removals may *release* memory (they retire an in-flight
            // rehash's old probe array), but a sweep never acquires any
            assert!(t.allocated_bytes() <= baseline, "sweep must not allocate");
        }
        assert!(t.is_empty(), "everything expired across the cycles");
    }

    #[test]
    fn set_label_and_pin_are_positive_only() {
        let mut t = FlowTable::new(100);
        t.insert_negative(ft(1), SimTime(0));
        assert!(!t.set_label(&ft(1), Label(3)), "negative flows carry no label");
        assert!(!t.pin_next(&ft(1), 2), "negative flows are never steered");
        assert!(!t.flag_label_switched(&ft(1)));
        assert_eq!(t.pinned_next(&ft(1)), None);
    }

    #[test]
    fn allocated_bytes_reported() {
        let mut t = FlowTable::new(100);
        for p in 0..100u16 {
            t.insert_positive(ft(p + 1), PolicyId(0), ActionList::permit(), SimTime(0));
        }
        let bytes = t.allocated_bytes();
        assert!(bytes > 0);
        assert!(bytes < 100 * 1000, "two orders of magnitude headroom");
    }

    #[test]
    fn allocator_unique_and_recycles() {
        let mut a = LabelAllocator::new();
        let l1 = a.allocate().unwrap();
        let l2 = a.allocate().unwrap();
        assert_ne!(l1, l2);
        assert_eq!(a.live(), 2);
        a.release(l1);
        assert_eq!(a.live(), 1);
        let l3 = a.allocate().unwrap();
        assert_eq!(l3, l1); // recycled
    }

    #[test]
    fn allocator_exhausts_at_64k() {
        let mut a = LabelAllocator::new();
        for _ in 0..=u16::MAX as u32 {
            assert!(a.allocate().is_some());
        }
        assert!(a.allocate().is_none());
        a.release(Label(123));
        assert_eq!(a.allocate(), Some(Label(123)));
    }
}
