//! Linear programming substrate for load-balanced policy enforcement.
//!
//! The paper's load-balancing step (§III.C) solves a min-max-load linear
//! program — Eq. (1) in per-(source, destination, policy) form, Eq. (2) in
//! the reduced per-(function, policy) form. Both are ordinary LPs; this
//! crate provides the general-purpose machinery the controller builds them
//! with:
//!
//! * [`LinearProgram`] — a builder for minimization LPs over non-negative
//!   variables with `≤ / ≥ / =` constraints.
//! * [`LinearProgram::solve`] — a from-scratch two-phase dense simplex
//!   solver with a Bland's-rule fallback for degenerate instances.
//! * [`LinearProgram::solve_warm`] — the same solver warm-started from a
//!   [`Basis`] exported by a previous solve, for the online re-steer loop
//!   where consecutive epochs solve small perturbations of one program.
//!
//! # Example
//!
//! The min-max structure used by the controller, in miniature: route 15
//! units across two boxes with capacities 10 and 20, minimizing the worst
//! load factor λ.
//!
//! ```
//! use sdm_lp::{LinearProgram, Relation};
//!
//! let mut lp = LinearProgram::new();
//! let t1 = lp.add_var("t1", 0.0);
//! let t2 = lp.add_var("t2", 0.0);
//! let lambda = lp.add_var("lambda", 1.0);
//! lp.add_constraint(vec![(t1, 1.0), (t2, 1.0)], Relation::Eq, 15.0);
//! lp.add_constraint(vec![(t1, 1.0), (lambda, -10.0)], Relation::Le, 0.0);
//! lp.add_constraint(vec![(t2, 1.0), (lambda, -20.0)], Relation::Le, 0.0);
//! let sol = lp.solve()?;
//! assert!((sol.objective - 0.5).abs() < 1e-6);
//! # Ok::<(), sdm_lp::SolveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod simplex;

pub use model::{Constraint, LinearProgram, Relation, VarId};
pub use simplex::{Basis, Solution, SolveError, WarmSolve};
