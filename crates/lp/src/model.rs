//! Linear-program model builder: variables, linear constraints, and a
//! minimization objective. All variables are implicitly non-negative, which
//! matches both load-balancing formulations of the paper (traffic volumes
//! and the load factor λ are non-negative).

use std::fmt;

/// Identifier of a decision variable in a [`LinearProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Dense index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `VarId` from a dense index (valid for
    /// `0..lp.num_vars()`); useful when iterating over all variables.
    pub fn from_index(index: usize) -> Self {
        VarId(index as u32)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Relation of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `⟨terms⟩ ≤ rhs`
    Le,
    /// `⟨terms⟩ ≥ rhs`
    Ge,
    /// `⟨terms⟩ = rhs`
    Eq,
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Relation::Le => "<=",
            Relation::Ge => ">=",
            Relation::Eq => "=",
        })
    }
}

/// One linear constraint: a sparse list of `(variable, coefficient)` terms,
/// a relation and a right-hand side.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Sparse terms; repeated variables are summed.
    pub terms: Vec<(VarId, f64)>,
    /// The relation.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// A minimization linear program over non-negative variables.
///
/// # Example
///
/// Minimize `x + 2y` subject to `x + y ≥ 4`, `y ≤ 3`:
///
/// ```
/// use sdm_lp::{LinearProgram, Relation};
///
/// let mut lp = LinearProgram::new();
/// let x = lp.add_var("x", 1.0);
/// let y = lp.add_var("y", 2.0);
/// lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
/// lp.add_constraint(vec![(y, 1.0)], Relation::Le, 3.0);
/// let sol = lp.solve()?;
/// assert!((sol.objective - 4.0).abs() < 1e-7); // x=4, y=0
/// # Ok::<(), sdm_lp::SolveError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct LinearProgram {
    pub(crate) objective: Vec<f64>,
    pub(crate) names: Vec<String>,
    pub(crate) constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a non-negative variable with the given objective coefficient
    /// (the objective is minimized).
    pub fn add_var(&mut self, name: impl Into<String>, objective: f64) -> VarId {
        let id = VarId(self.objective.len() as u32);
        self.objective.push(objective);
        self.names.push(name.into());
        id
    }

    /// Adds a constraint. Repeated variables in `terms` are summed; terms
    /// referencing unknown variables panic.
    ///
    /// # Panics
    ///
    /// Panics if any term references a variable not created by this program.
    pub fn add_constraint(
        &mut self,
        terms: Vec<(VarId, f64)>,
        relation: Relation,
        rhs: f64,
    ) {
        for &(v, _) in &terms {
            assert!(
                v.index() < self.objective.len(),
                "constraint references unknown variable {v}"
            );
        }
        self.constraints.push(Constraint {
            terms,
            relation,
            rhs,
        });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The name given to a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.names[v.index()]
    }

    /// Evaluates the objective at a point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_vars());
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Renders the program in CPLEX-LP-style text, for debugging and for
    /// feeding to external solvers when cross-checking results.
    ///
    /// # Example
    ///
    /// ```
    /// use sdm_lp::{LinearProgram, Relation};
    /// let mut lp = LinearProgram::new();
    /// let x = lp.add_var("x", 1.0);
    /// lp.add_constraint(vec![(x, 2.0)], Relation::Ge, 4.0);
    /// let text = lp.to_lp_format();
    /// assert!(text.contains("Minimize"));
    /// assert!(text.contains("2 x >= 4"));
    /// ```
    pub fn to_lp_format(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("Minimize\n obj:");
        let mut first = true;
        for (i, &c) in self.objective.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            let name = &self.names[i];
            if first {
                let _ = write!(out, " {c} {name}");
                first = false;
            } else if c < 0.0 {
                let _ = write!(out, " - {} {name}", -c);
            } else {
                let _ = write!(out, " + {c} {name}");
            }
        }
        if first {
            out.push_str(" 0");
        }
        out.push_str("\nSubject To\n");
        for (ci, con) in self.constraints.iter().enumerate() {
            let _ = write!(out, " c{ci}:");
            let mut first = true;
            for &(v, coef) in &con.terms {
                let name = &self.names[v.index()];
                if first {
                    let _ = write!(out, " {coef} {name}");
                    first = false;
                } else if coef < 0.0 {
                    let _ = write!(out, " - {} {name}", -coef);
                } else {
                    let _ = write!(out, " + {coef} {name}");
                }
            }
            if first {
                out.push_str(" 0");
            }
            let rel = match con.relation {
                Relation::Le => "<=",
                Relation::Ge => ">=",
                Relation::Eq => "=",
            };
            let _ = writeln!(out, " {rel} {}", con.rhs);
        }
        out.push_str("Bounds\n");
        for name in &self.names {
            let _ = writeln!(out, " 0 <= {name}");
        }
        out.push_str("End\n");
        out
    }

    /// Checks whether `x` satisfies every constraint (and non-negativity)
    /// within tolerance `tol`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        assert_eq!(x.len(), self.num_vars());
        if x.iter().any(|&v| v < -tol) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.terms.iter().map(|&(v, coef)| coef * x[v.index()]).sum();
            match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_vars_and_constraints() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", 1.0);
        let y = lp.add_var("lambda", 0.5);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::Le, 2.0);
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_constraints(), 1);
        assert_eq!(lp.var_name(y), "lambda");
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn rejects_foreign_variable() {
        let mut lp = LinearProgram::new();
        let _x = lp.add_var("x", 1.0);
        lp.add_constraint(vec![(VarId(5), 1.0)], Relation::Le, 1.0);
    }

    #[test]
    fn feasibility_check() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", 1.0);
        let y = lp.add_var("y", 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::Le, 3.0);
        assert!(lp.is_feasible(&[4.0, 0.0], 1e-9));
        assert!(lp.is_feasible(&[1.0, 3.0], 1e-9));
        assert!(!lp.is_feasible(&[1.0, 1.0], 1e-9)); // sum < 4
        assert!(!lp.is_feasible(&[5.0, -0.1], 1e-9)); // negative
        assert!(!lp.is_feasible(&[1.0, 4.0], 1e-9)); // y > 3
    }

    #[test]
    fn objective_eval() {
        let mut lp = LinearProgram::new();
        let _ = lp.add_var("x", 2.0);
        let _ = lp.add_var("y", -1.0);
        assert_eq!(lp.objective_at(&[3.0, 4.0]), 2.0);
    }

    #[test]
    fn duplicate_terms_are_summed_by_solver_semantics() {
        // is_feasible must treat repeated variables additively
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", 1.0);
        lp.add_constraint(vec![(x, 1.0), (x, 1.0)], Relation::Eq, 4.0);
        assert!(lp.is_feasible(&[2.0], 1e-9));
        assert!(!lp.is_feasible(&[4.0], 1e-9));
    }
}
