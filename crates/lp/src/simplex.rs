//! Two-phase dense simplex solver.
//!
//! Standard-form reduction: every constraint is normalized to a
//! non-negative right-hand side; `≤` rows get a slack column, `≥` rows a
//! surplus plus an artificial column, `=` rows an artificial column.
//! Phase 1 minimizes the sum of artificials from the trivial basis; phase 2
//! optimizes the real objective. Pivoting uses Dantzig's rule and falls
//! back to Bland's rule after an iteration budget to guarantee termination
//! on degenerate problems.
//!
//! # Warm starts
//!
//! [`LinearProgram::solve_warm`] additionally accepts a [`Basis`] exported
//! by a previous solve. When the new program has the *same shape* (variable
//! and constraint counts, column layout, normalized relation sequence) the
//! recorded basis is re-installed by pivoting each row onto its recorded
//! basic column and phase 1 is skipped entirely. If the perturbation left
//! the old basis primal-infeasible (negative right-hand sides), a
//! **dual-simplex repair** pivots feasibility back first — the recorded
//! basis is still (near-)dual-feasible, so this takes a handful of pivots —
//! and phase 2 then re-optimizes from the repaired basis. Any invalidation
//! (shape mismatch, singular pivot under the new coefficients, a repair
//! that stalls or would leave an artificial basic at a nonzero value)
//! falls back to the cold path. The Bland's-rule fallbacks inside
//! [`Tableau::optimize`] and `dual_repair` double as the anti-cycling
//! guards for the warm re-optimization.

use std::fmt;

use crate::model::{LinearProgram, Relation};

/// Numeric tolerance for pivoting and feasibility decisions.
const EPS: f64 = 1e-9;

/// Error returned by [`LinearProgram::solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// No point satisfies all constraints.
    Infeasible,
    /// The objective can be decreased without bound.
    Unbounded,
    /// The pivot-iteration budget was exhausted (numerical trouble).
    IterationLimit,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SolveError::Infeasible => "linear program is infeasible",
            SolveError::Unbounded => "linear program is unbounded",
            SolveError::IterationLimit => "simplex iteration limit exceeded",
        })
    }
}

impl std::error::Error for SolveError {}

/// An optimal solution of a [`LinearProgram`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The minimal objective value.
    pub objective: f64,
    /// Optimal values of the original variables, indexed by `VarId`.
    pub values: Vec<f64>,
    /// Pivot iterations spent across both phases.
    pub iterations: u64,
}

impl Solution {
    /// Value of one variable.
    pub fn value(&self, v: crate::model::VarId) -> f64 {
        self.values[v.index()]
    }
}

/// A simplex basis exported by [`LinearProgram::solve_warm`]: the basic
/// column of every tableau row plus a shape fingerprint of the program it
/// came from. A hint only warm-starts a program with the *same* shape —
/// adding a variable, a constraint, or flipping a right-hand-side sign
/// (which changes the normalized relation and hence the column layout)
/// changes the fingerprint and the solver falls back to a cold solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    num_vars: usize,
    num_constraints: usize,
    cols: usize,
    first_art: usize,
    /// Normalized (rhs ≥ 0) relation per row; the slack/artificial column
    /// layout is a function of this sequence.
    rel: Vec<Relation>,
    /// `basis[r]` = column basic in row `r`, in the internal
    /// `[vars | slack/surplus | artificial]` layout.
    basis: Vec<usize>,
}

impl Basis {
    /// `true` when this basis fits `p`'s standard form exactly.
    fn fits(&self, n: usize, p: &Prepared) -> bool {
        self.num_vars == n
            && self.num_constraints == p.t.rows
            && self.cols == p.t.cols
            && self.first_art == p.first_art
            && self.rel == p.rel
    }
}

/// Result of [`LinearProgram::solve_warm`]: the solution, the final basis
/// (reusable as the next solve's hint) and whether the hint was actually
/// installed or the solver fell back to a cold two-phase solve.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmSolve {
    /// The optimal solution.
    pub solution: Solution,
    /// The optimal basis; pass as `hint` to re-solve a perturbed program.
    pub basis: Basis,
    /// `true` when the hint basis was installed and phase 1 was skipped
    /// (including when a dual-simplex repair was needed first); `false`
    /// on a cold solve (no hint, shape mismatch, a singular hint basis,
    /// or a repair that stalled).
    pub warm_used: bool,
}

/// Dense simplex tableau: `rows × cols` coefficients, per-row rhs, and a
/// cost row kept in reduced form.
struct Tableau {
    rows: usize,
    cols: usize,
    /// a[r * cols + c]
    a: Vec<f64>,
    b: Vec<f64>,
    /// reduced costs (cost row)
    c: Vec<f64>,
    /// negative of current objective value
    obj: f64,
    /// basis[r] = column basic in row r
    basis: Vec<usize>,
    /// scratch copy of the pivot row (avoids re-borrowing `a` in `pivot`)
    prow: Vec<f64>,
    /// scratch list of the pivot row's nonzero columns
    nz: Vec<u32>,
}

impl Tableau {
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.cols + c]
    }

    fn pivot(&mut self, pr: usize, pc: usize) {
        let cols = self.cols;
        let piv = self.a[pr * cols + pc];
        debug_assert!(piv.abs() > EPS, "pivot too small");
        let inv = 1.0 / piv;
        for c in 0..cols {
            self.a[pr * cols + c] *= inv;
        }
        self.b[pr] *= inv;
        self.a[pr * cols + pc] = 1.0; // fight rounding
        // Snapshot the (scaled) pivot row and its nonzero support. Early
        // tableaus are very sparse, so restricting every row update to the
        // support — `x -= f * 0.0` can only flip the sign of a zero, which
        // no later comparison or output observes — cuts the dominant
        // O(rows x cols) cost of the solve by the row's sparsity factor.
        self.prow.clear();
        self.prow.extend_from_slice(&self.a[pr * cols..(pr + 1) * cols]);
        self.nz.clear();
        for (c, &v) in self.prow.iter().enumerate() {
            if v != 0.0 {
                self.nz.push(c as u32);
            }
        }
        for r in 0..self.rows {
            if r == pr {
                continue;
            }
            let factor = self.a[r * cols + pc];
            if factor.abs() <= EPS {
                self.a[r * cols + pc] = 0.0;
                continue;
            }
            // row_r -= factor * row_pr, on the pivot row's support only
            let row = &mut self.a[r * cols..(r + 1) * cols];
            for &c in &self.nz {
                let c = c as usize;
                row[c] -= factor * self.prow[c];
            }
            row[pc] = 0.0;
            self.b[r] -= factor * self.b[pr];
        }
        let cf = self.c[pc];
        if cf.abs() > EPS {
            for &c in &self.nz {
                let c = c as usize;
                self.c[c] -= cf * self.prow[c];
            }
            self.c[pc] = 0.0;
            self.obj -= cf * self.b[pr];
        }
        self.basis[pr] = pc;
    }

    /// Runs simplex iterations until optimal. `allowed` limits the columns
    /// eligible to enter (used to keep artificials out in phase 2).
    fn optimize(&mut self, allowed: usize, budget: &mut u64) -> Result<(), SolveError> {
        // Switch to Bland's rule after a degeneracy-scaled threshold.
        let bland_after = 4 * (self.rows as u64 + allowed as u64) + 64;
        let mut iters_here: u64 = 0;
        loop {
            if *budget == 0 {
                return Err(SolveError::IterationLimit);
            }
            let use_bland = iters_here > bland_after;
            // entering column
            let mut enter: Option<usize> = None;
            if use_bland {
                for c in 0..allowed {
                    if self.c[c] < -EPS {
                        enter = Some(c);
                        break;
                    }
                }
            } else {
                let mut best = -EPS;
                for c in 0..allowed {
                    if self.c[c] < best {
                        best = self.c[c];
                        enter = Some(c);
                    }
                }
            }
            let Some(pc) = enter else {
                return Ok(()); // optimal
            };
            // leaving row: minimal ratio; Bland tie-break on basis index
            let mut leave: Option<(f64, usize, usize)> = None; // (ratio, basis col, row)
            for r in 0..self.rows {
                let arc = self.at(r, pc);
                if arc > EPS {
                    let ratio = self.b[r] / arc;
                    let key = (ratio, self.basis[r]);
                    if leave.is_none_or(|(lr, lb, _)| key < (lr, lb)) {
                        leave = Some((ratio, self.basis[r], r));
                    }
                }
            }
            let Some((_, _, pr)) = leave else {
                return Err(SolveError::Unbounded);
            };
            self.pivot(pr, pc);
            *budget -= 1;
            iters_here += 1;
        }
    }
}

/// A program lowered to standard form: the initial tableau (trivial
/// slack/artificial basis installed) plus the layout facts the solve
/// phases need.
struct Prepared {
    t: Tableau,
    first_art: usize,
    /// Normalized relation per row (shape fingerprint component).
    rel: Vec<Relation>,
}

/// Tolerance for warm-start pivot elements and installed-basis
/// feasibility — looser than `EPS` so near-singular or marginal hints
/// fall back to a cold solve instead of amplifying roundoff.
const WARM_TOL: f64 = 1e-7;

/// Re-installs a recorded basis into a freshly prepared tableau by
/// pivoting each row onto its recorded basic column (refactorization —
/// these pivots are not counted as solve iterations). Returns `false`,
/// possibly leaving the tableau dirty (the caller must re-prepare), when
/// the basis is singular under the new coefficients or primal-infeasible
/// for the new right-hand side.
fn install_basis(p: &mut Prepared, hint: &Basis) -> bool {
    let (m, cols, first_art) = (p.t.rows, p.t.cols, p.first_art);
    // A valid basis has one distinct column per row.
    let mut seen = vec![false; cols];
    for &c in &hint.basis {
        if c >= cols || seen[c] {
            return false;
        }
        seen[c] = true;
    }
    // Bring each recorded column into the basis with partial pivoting:
    // a basis is a *set* of columns, so each column may land in whichever
    // unassigned row gives the largest pivot element (the recorded
    // row association need not survive the perturbation).
    let mut assigned = vec![false; m];
    for &tc in &hint.basis {
        let mut best_r = usize::MAX;
        let mut best_v = 0.0f64;
        for (r, &taken) in assigned.iter().enumerate() {
            if taken {
                continue;
            }
            let v = p.t.at(r, tc).abs();
            if v > best_v {
                best_v = v;
                best_r = r;
            }
        }
        if best_v <= WARM_TOL {
            return false; // singular under the perturbed coefficients
        }
        if p.t.basis[best_r] != tc {
            p.t.pivot(best_r, tc);
        }
        assigned[best_r] = true;
    }
    // An artificial may only stay basic at (numerical) zero — otherwise
    // the recorded basis does not describe a solution of the real
    // program. Negative right-hand sides are fine here: the dual-simplex
    // repair restores primal feasibility after phase-2 pricing.
    for r in 0..m {
        if p.t.basis[r] >= first_art && p.t.b[r].abs() > WARM_TOL {
            return false;
        }
        if p.t.b[r] < 0.0 && p.t.b[r] > -WARM_TOL {
            p.t.b[r] = 0.0;
        }
    }
    true
}

/// Dual-simplex repair after basis installation: the traffic perturbation
/// may have driven some right-hand sides negative under the recorded
/// basis (primal infeasible), but the basis is still (near-)dual-feasible
/// — exactly the regime dual pivots handle. Repeatedly drop the most
/// negative row out of the basis, entering the column with the smallest
/// reduced-cost ratio, until the rhs is non-negative. Requires the
/// phase-2 reduced cost row to be priced out already.
///
/// Returns `false` (caller falls back to a cold solve) when a negative
/// row has no eligible pivot (primal infeasible under this basis), when
/// the pivot cap is exhausted (cycling / numerical trouble), or when the
/// repair would leave an artificial basic at a nonzero value.
fn dual_repair(p: &mut Prepared, budget: &mut u64, iterations: &mut u64) -> bool {
    let (m, first_art) = (p.t.rows, p.first_art);
    let cap = 8 * m as u64 + 512;
    let bland_after = 4 * m as u64 + 64;
    let mut spent = 0u64;
    loop {
        // Leaving row: most negative rhs.
        let mut pr = usize::MAX;
        let mut most = -EPS;
        for r in 0..m {
            if p.t.b[r] < most {
                most = p.t.b[r];
                pr = r;
            }
        }
        if pr == usize::MAX {
            // Feasible. Reject if an artificial ended up basic at a
            // nonzero value; clamp numerical dust.
            for r in 0..m {
                if p.t.basis[r] >= first_art && p.t.b[r] > WARM_TOL {
                    return false;
                }
                if p.t.b[r] < 0.0 {
                    p.t.b[r] = 0.0;
                }
            }
            return true;
        }
        if spent >= cap || *budget == 0 {
            return false;
        }
        // Entering column: smallest ratio of reduced cost to |pivot|
        // among strictly negative pivot elements (artificials excluded);
        // after the anti-cycling threshold, first eligible column wins
        // (Bland). Coefficient drift can leave slightly negative reduced
        // costs; clamping them to zero in the ratio keeps the rule
        // well-defined and phase 2 restores optimality afterwards.
        let mut pc = usize::MAX;
        let mut best = f64::INFINITY;
        let mut best_mag = 0.0f64;
        for (j, &cj) in p.t.c.iter().enumerate().take(first_art) {
            let a = p.t.at(pr, j);
            if a < -WARM_TOL {
                if spent > bland_after {
                    pc = j;
                    break;
                }
                let ratio = cj.max(0.0) / -a;
                if ratio < best - EPS || (ratio < best + EPS && -a > best_mag) {
                    best = ratio;
                    best_mag = -a;
                    pc = j;
                }
            }
        }
        if pc == usize::MAX {
            return false; // no pivot: infeasible under this basis
        }
        p.t.pivot(pr, pc);
        *budget -= 1;
        *iterations += 1;
        spent += 1;
    }
}

/// Phase 1: minimize the sum of artificials from the trivial basis, then
/// drive any leftover (degenerate) artificial out of the basis.
fn phase1(p: &mut Prepared, budget: &mut u64, iterations: &mut u64) -> Result<(), SolveError> {
    let (m, cols, first_art) = (p.t.rows, p.t.cols, p.first_art);
    if first_art >= cols {
        return Ok(());
    }
    for c in first_art..cols {
        p.t.c[c] = 1.0;
    }
    // Price out the artificial basis columns.
    for i in 0..m {
        if p.t.basis[i] >= first_art {
            for c in 0..cols {
                let v = p.t.a[i * cols + c];
                p.t.c[c] -= v;
            }
            p.t.obj -= p.t.b[i];
        }
    }
    let before = *budget;
    p.t.optimize(cols, budget)?;
    *iterations += before - *budget;
    let phase1_obj = -p.t.obj;
    if phase1_obj > 1e-6 {
        return Err(SolveError::Infeasible);
    }
    // Drive any artificial still in the basis out (degenerate rows). A row
    // with no eligible pivot is redundant: harmless, the artificial stays
    // at value 0 and can never re-enter (phase 2 excludes it).
    for r in 0..m {
        if p.t.basis[r] >= first_art {
            for c in 0..first_art {
                if p.t.at(r, c).abs() > EPS {
                    p.t.pivot(r, c);
                    break;
                }
            }
        }
    }
    Ok(())
}

/// Prices the real objective out over the current basis (the reduced cost
/// row phase 2 — and the dual repair — work against).
fn price_phase2(lp: &LinearProgram, p: &mut Prepared) {
    let (m, cols) = (p.t.rows, p.t.cols);
    p.t.c = vec![0.0; cols];
    p.t.obj = 0.0;
    for v in 0..lp.num_vars() {
        p.t.c[v] = lp.objective[v];
    }
    // Price out the current basis.
    for i in 0..m {
        let bc = p.t.basis[i];
        let cf = p.t.c[bc];
        if cf.abs() > EPS {
            for c in 0..cols {
                let v = p.t.a[i * cols + c];
                p.t.c[c] -= cf * v;
            }
            p.t.c[bc] = 0.0;
            p.t.obj -= cf * p.t.b[i];
        }
    }
}

/// Phase 2: prices the real objective out over the current basis and
/// optimizes with artificial columns excluded from entering.
fn phase2(
    lp: &LinearProgram,
    p: &mut Prepared,
    budget: &mut u64,
    iterations: &mut u64,
) -> Result<(), SolveError> {
    price_phase2(lp, p);
    let before = *budget;
    p.t.optimize(p.first_art, budget)?;
    *iterations += before - *budget;
    Ok(())
}

impl LinearProgram {
    /// Solves the program with the two-phase simplex method.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] if no feasible point exists,
    /// [`SolveError::Unbounded`] if the objective is unbounded below,
    /// [`SolveError::IterationLimit`] if the pivot budget is exhausted.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        self.solve_warm(None).map(|w| w.solution)
    }

    /// Solves the program, optionally warm-starting from a [`Basis`]
    /// recorded by a previous call, and exports the final basis.
    ///
    /// With a fitting hint, phase 1 is skipped: the recorded basis is
    /// re-installed, a dual-simplex repair restores primal feasibility if
    /// the perturbation drove right-hand sides negative, and phase 2
    /// re-optimizes from there. `Solution::iterations` counts the repair
    /// and re-optimization pivots (basis installation is refactorization,
    /// not search). On any basis invalidation — shape mismatch, singular
    /// pivot, a stalled repair — the solver transparently falls back to
    /// the cold two-phase path and reports `warm_used: false`.
    ///
    /// # Errors
    ///
    /// As [`LinearProgram::solve`]; a usable hint never turns a feasible
    /// program infeasible (invalid hints are discarded, not trusted).
    pub fn solve_warm(&self, hint: Option<&Basis>) -> Result<WarmSolve, SolveError> {
        let n = self.num_vars();
        let mut p = self.prepare();
        let mut budget: u64 = 200 * (p.t.rows as u64 + p.t.cols as u64) + 20_000;
        let mut iterations: u64 = 0;

        let mut warm_used = false;
        if let Some(h) = hint {
            if h.fits(n, &p) && install_basis(&mut p, h) {
                // Re-optimize from the installed basis: price the real
                // objective, repair primal feasibility with dual pivots
                // if the rhs drifted negative, then continue primally.
                price_phase2(self, &mut p);
                if dual_repair(&mut p, &mut budget, &mut iterations) {
                    let before = budget;
                    p.t.optimize(p.first_art, &mut budget)?;
                    iterations += before - budget;
                    warm_used = true;
                }
            }
            if !warm_used {
                // Installation or repair may have dirtied the tableau;
                // rebuild for the cold path (failed-repair pivots stay
                // counted — they were genuine work).
                p = self.prepare();
            }
        }
        if !warm_used {
            phase1(&mut p, &mut budget, &mut iterations)?;
            phase2(self, &mut p, &mut budget, &mut iterations)?;
        }

        let mut values = vec![0.0; n];
        for r in 0..p.t.rows {
            if p.t.basis[r] < n {
                values[p.t.basis[r]] = p.t.b[r].max(0.0);
            }
        }
        let basis = Basis {
            num_vars: n,
            num_constraints: p.t.rows,
            cols: p.t.cols,
            first_art: p.first_art,
            rel: p.rel.clone(),
            basis: p.t.basis.clone(),
        };
        Ok(WarmSolve {
            solution: Solution {
                objective: -p.t.obj,
                values,
                iterations,
            },
            basis,
            warm_used,
        })
    }

    /// Lowers the program to standard form with the trivial basis.
    fn prepare(&self) -> Prepared {
        let n = self.num_vars();
        let m = self.num_constraints();

        // Normalize rows to rhs >= 0 and decide column layout.
        // Layout: [original 0..n | slack/surplus | artificial]
        let mut slack_of = vec![usize::MAX; m]; // column of slack/surplus
        let mut art_of = vec![usize::MAX; m];
        let mut next = n;
        let mut rel = Vec::with_capacity(m);
        let mut rhs = Vec::with_capacity(m);
        for con in &self.constraints {
            let (r, b) = if con.rhs < 0.0 {
                // multiply by -1
                let flipped = match con.relation {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
                (flipped, -con.rhs)
            } else {
                (con.relation, con.rhs)
            };
            rel.push(r);
            rhs.push(b);
        }
        for (i, r) in rel.iter().enumerate() {
            match r {
                Relation::Le | Relation::Ge => {
                    slack_of[i] = next;
                    next += 1;
                }
                Relation::Eq => {}
            }
        }
        let first_art = next;
        for (i, r) in rel.iter().enumerate() {
            let needs_artificial = matches!(r, Relation::Ge | Relation::Eq);
            if needs_artificial {
                art_of[i] = next;
                next += 1;
            }
        }
        let cols = next;

        let mut t = Tableau {
            rows: m,
            cols,
            a: vec![0.0; m * cols],
            b: rhs,
            c: vec![0.0; cols],
            obj: 0.0,
            basis: vec![usize::MAX; m],
            prow: Vec::with_capacity(cols),
            nz: Vec::with_capacity(cols),
        };

        // Fill coefficients (terms summed; sign flipped for normalized
        // rows), then equilibrate each row by its largest |coefficient| so
        // that badly scaled models (traffic volumes in the millions next
        // to unit capacities) pivot stably.
        for (i, con) in self.constraints.iter().enumerate() {
            let sign = if con.rhs < 0.0 { -1.0 } else { 1.0 };
            for &(v, coef) in &con.terms {
                t.a[i * cols + v.index()] += sign * coef;
            }
            let row_max = (0..n)
                .map(|v| t.a[i * cols + v].abs())
                .fold(0.0f64, f64::max);
            if row_max > EPS && !(1e-4..=1e4).contains(&row_max) {
                let inv = 1.0 / row_max;
                for v in 0..n {
                    t.a[i * cols + v] *= inv;
                }
                t.b[i] *= inv;
            }
            match rel[i] {
                Relation::Le => {
                    t.a[i * cols + slack_of[i]] = 1.0;
                    t.basis[i] = slack_of[i];
                }
                Relation::Ge => {
                    t.a[i * cols + slack_of[i]] = -1.0;
                    t.a[i * cols + art_of[i]] = 1.0;
                    t.basis[i] = art_of[i];
                }
                Relation::Eq => {
                    t.a[i * cols + art_of[i]] = 1.0;
                    t.basis[i] = art_of[i];
                }
            }
        }

        Prepared { t, first_art, rel }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinearProgram, Relation::*};

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn simple_minimization() {
        // min x + 2y  s.t. x + y >= 4, y <= 3  -> x=4, y=0, obj=4
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", 1.0);
        let y = lp.add_var("y", 2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Ge, 4.0);
        lp.add_constraint(vec![(y, 1.0)], Le, 3.0);
        let s = lp.solve().unwrap();
        assert!(approx(s.objective, 4.0), "{}", s.objective);
        assert!(approx(s.value(x), 4.0));
        assert!(approx(s.value(y), 0.0));
    }

    #[test]
    fn maximization_via_negation() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18 -> x=2,y=6, max=36
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", -3.0);
        let y = lp.add_var("y", -5.0);
        lp.add_constraint(vec![(x, 1.0)], Le, 4.0);
        lp.add_constraint(vec![(y, 2.0)], Le, 12.0);
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Le, 18.0);
        let s = lp.solve().unwrap();
        assert!(approx(s.objective, -36.0), "{}", s.objective);
        assert!(approx(s.value(x), 2.0));
        assert!(approx(s.value(y), 6.0));
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 6, x - y = 0 -> x=y=2, obj=4
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", 1.0);
        let y = lp.add_var("y", 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 2.0)], Eq, 6.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Eq, 0.0);
        let s = lp.solve().unwrap();
        assert!(approx(s.objective, 4.0));
        assert!(approx(s.value(x), 2.0));
        assert!(approx(s.value(y), 2.0));
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", 1.0);
        lp.add_constraint(vec![(x, 1.0)], Le, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Ge, 2.0);
        assert_eq!(lp.solve(), Err(SolveError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        // min -x with x unconstrained above
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", -1.0);
        lp.add_constraint(vec![(x, 1.0)], Ge, 0.0);
        assert_eq!(lp.solve(), Err(SolveError::Unbounded));
    }

    #[test]
    fn negative_rhs_normalized() {
        // min x s.t. -x <= -3  (i.e. x >= 3)
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", 1.0);
        lp.add_constraint(vec![(x, -1.0)], Le, -3.0);
        let s = lp.solve().unwrap();
        assert!(approx(s.value(x), 3.0));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Beale's cycling example (classic); Bland fallback must terminate.
        let mut lp = LinearProgram::new();
        let x1 = lp.add_var("x1", -0.75);
        let x2 = lp.add_var("x2", 150.0);
        let x3 = lp.add_var("x3", -0.02);
        let x4 = lp.add_var("x4", 6.0);
        lp.add_constraint(vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)], Le, 0.0);
        lp.add_constraint(vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)], Le, 0.0);
        lp.add_constraint(vec![(x3, 1.0)], Le, 1.0);
        let s = lp.solve().unwrap();
        assert!(approx(s.objective, -0.05), "{}", s.objective);
    }

    #[test]
    fn min_max_structure_like_load_balancing() {
        // Two "middleboxes" with capacities 10 and 20 must absorb 15 units;
        // min lambda with load_i <= lambda * C_i. Optimum: lambda = 0.5.
        let mut lp = LinearProgram::new();
        let t1 = lp.add_var("t1", 0.0);
        let t2 = lp.add_var("t2", 0.0);
        let lam = lp.add_var("lambda", 1.0);
        lp.add_constraint(vec![(t1, 1.0), (t2, 1.0)], Eq, 15.0);
        lp.add_constraint(vec![(t1, 1.0), (lam, -10.0)], Le, 0.0);
        lp.add_constraint(vec![(t2, 1.0), (lam, -20.0)], Le, 0.0);
        lp.add_constraint(vec![(lam, 1.0)], Le, 1.0);
        let s = lp.solve().unwrap();
        assert!(approx(s.objective, 0.5), "{}", s.objective);
        assert!(approx(s.value(t1), 5.0));
        assert!(approx(s.value(t2), 10.0));
    }

    #[test]
    fn lambda_cap_makes_overload_infeasible() {
        // 50 units into total capacity 30 with lambda <= 1: infeasible.
        let mut lp = LinearProgram::new();
        let t1 = lp.add_var("t1", 0.0);
        let t2 = lp.add_var("t2", 0.0);
        let lam = lp.add_var("lambda", 1.0);
        lp.add_constraint(vec![(t1, 1.0), (t2, 1.0)], Eq, 50.0);
        lp.add_constraint(vec![(t1, 1.0), (lam, -10.0)], Le, 0.0);
        lp.add_constraint(vec![(t2, 1.0), (lam, -20.0)], Le, 0.0);
        lp.add_constraint(vec![(lam, 1.0)], Le, 1.0);
        assert_eq!(lp.solve(), Err(SolveError::Infeasible));
    }

    #[test]
    fn redundant_equalities_ok() {
        // x + y = 4 stated twice; min x -> x=0,y=4
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", 1.0);
        let y = lp.add_var("y", 0.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Eq, 4.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Eq, 4.0);
        let s = lp.solve().unwrap();
        assert!(approx(s.objective, 0.0));
        assert!(approx(s.value(y), 4.0));
    }

    #[test]
    fn zero_variable_problem() {
        let lp = LinearProgram::new();
        let s = lp.solve().unwrap();
        assert_eq!(s.objective, 0.0);
        assert!(s.values.is_empty());
    }

    #[test]
    fn badly_scaled_rows_solve_accurately() {
        // volumes in the millions against unit capacities, mixed with a
        // tiny-coefficient row
        let mut lp = LinearProgram::new();
        let t1 = lp.add_var("t1", 0.0);
        let t2 = lp.add_var("t2", 0.0);
        let lam = lp.add_var("lambda", 1.0);
        lp.add_constraint(vec![(t1, 1.0), (t2, 1.0)], Eq, 9_000_000.0);
        lp.add_constraint(vec![(t1, 1.0), (lam, -1.0)], Le, 0.0);
        lp.add_constraint(vec![(t2, 1.0), (lam, -1.0)], Le, 0.0);
        lp.add_constraint(vec![(t1, 1e-6), (t2, -1e-6)], Le, 1.0);
        let s = lp.solve().unwrap();
        assert!(
            (s.objective - 4_500_000.0).abs() / 4_500_000.0 < 1e-9,
            "{}",
            s.objective
        );
        assert!(lp.is_feasible(&s.values, 1.0));
    }

    #[test]
    fn lp_format_contains_whole_model() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", 1.0);
        let y = lp.add_var("y", -2.0);
        lp.add_constraint(vec![(x, 1.0), (y, -3.0)], Ge, 4.0);
        lp.add_constraint(vec![(y, 1.0)], Le, 7.0);
        let text = lp.to_lp_format();
        assert!(text.contains("Minimize"), "{text}");
        assert!(text.contains("- 2 y"), "{text}");
        assert!(text.contains("1 x - 3 y >= 4"), "{text}");
        assert!(text.contains("1 y <= 7"), "{text}");
        assert!(text.contains("0 <= x"), "{text}");
        assert!(text.ends_with("End\n"), "{text}");
    }

    /// The LB-like min-max program used by the warm-start tests: route
    /// `total` units across three boxes of capacities 10/20/30, min λ.
    fn lb_like(total: f64) -> LinearProgram {
        let mut lp = LinearProgram::new();
        let t1 = lp.add_var("t1", 0.0);
        let t2 = lp.add_var("t2", 0.0);
        let t3 = lp.add_var("t3", 0.0);
        let lam = lp.add_var("lambda", 1.0);
        lp.add_constraint(vec![(t1, 1.0), (t2, 1.0), (t3, 1.0)], Eq, total);
        lp.add_constraint(vec![(t1, 1.0), (lam, -10.0)], Le, 0.0);
        lp.add_constraint(vec![(t2, 1.0), (lam, -20.0)], Le, 0.0);
        lp.add_constraint(vec![(t3, 1.0), (lam, -30.0)], Le, 0.0);
        lp
    }

    #[test]
    fn warm_start_on_identical_program_skips_all_pivots() {
        let lp = lb_like(30.0);
        let cold = lp.solve_warm(None).unwrap();
        assert!(!cold.warm_used);
        let warm = lp.solve_warm(Some(&cold.basis)).unwrap();
        assert!(warm.warm_used);
        assert_eq!(warm.solution.iterations, 0, "optimal basis re-optimizes in 0 pivots");
        assert!(approx(warm.solution.objective, cold.solution.objective));
        let cols = |b: &Basis| {
            let mut v = b.basis.clone();
            v.sort_unstable();
            v
        };
        assert_eq!(cols(&warm.basis), cols(&cold.basis), "same basic column set");
    }

    #[test]
    fn warm_start_on_perturbed_rhs_uses_fewer_pivots() {
        let cold = lb_like(30.0).solve_warm(None).unwrap();
        let perturbed = lb_like(33.0);
        let warm = perturbed.solve_warm(Some(&cold.basis)).unwrap();
        let re_cold = perturbed.solve_warm(None).unwrap();
        assert!(warm.warm_used);
        assert!(approx(warm.solution.objective, re_cold.solution.objective));
        assert!(
            warm.solution.iterations < re_cold.solution.iterations,
            "warm {} vs cold {}",
            warm.solution.iterations,
            re_cold.solution.iterations
        );
        assert!(perturbed.is_feasible(&warm.solution.values, 1e-6));
    }

    #[test]
    fn warm_start_shape_mismatch_falls_back_to_cold() {
        let other = {
            // Same row count, different relations -> fingerprint mismatch.
            let mut lp = LinearProgram::new();
            let x = lp.add_var("x", 1.0);
            lp.add_constraint(vec![(x, 1.0)], Ge, 4.0);
            lp.solve_warm(None).unwrap()
        };
        let lp = lb_like(30.0);
        let warm = lp.solve_warm(Some(&other.basis)).unwrap();
        assert!(!warm.warm_used);
        assert!(approx(warm.solution.objective, 0.5));
    }

    #[test]
    fn warm_start_infeasible_hint_basis_falls_back() {
        // The optimum of the lightly loaded program has slack basic in the
        // capacity rows; jumping the volume far past every capacity makes
        // the old basis primal-infeasible for the new rhs — the solver
        // must notice and still produce the right (cold) answer.
        let cold = lb_like(6.0).solve_warm(None).unwrap();
        let heavy = lb_like(59.9);
        let warm = heavy.solve_warm(Some(&cold.basis)).unwrap();
        let re_cold = heavy.solve_warm(None).unwrap();
        assert!(approx(warm.solution.objective, re_cold.solution.objective));
        assert!(heavy.is_feasible(&warm.solution.values, 1e-6));
    }

    #[test]
    fn warm_start_rhs_sign_flip_invalidates_fingerprint() {
        // min x s.t. -x <= rhs: rhs = 1 keeps Le, rhs = -3 normalizes to
        // Ge (x >= 3) — same counts, different normalized relations.
        let build = |rhs: f64| {
            let mut lp = LinearProgram::new();
            let x = lp.add_var("x", 1.0);
            lp.add_constraint(vec![(x, -1.0)], Le, rhs);
            lp
        };
        let hint = build(1.0).solve_warm(None).unwrap();
        let flipped = build(-3.0);
        let warm = flipped.solve_warm(Some(&hint.basis)).unwrap();
        assert!(!warm.warm_used, "sign flip must invalidate the basis shape");
        assert!(approx(warm.solution.values[0], 3.0));
    }

    #[test]
    fn solve_matches_solve_warm_without_hint() {
        let lp = lb_like(30.0);
        let a = lp.solve().unwrap();
        let b = lp.solve_warm(None).unwrap();
        assert_eq!(a, b.solution);
    }

    #[test]
    fn warm_start_chain_across_drifting_traffic_stays_optimal() {
        // An epoch-loop in miniature: traffic drifts, each epoch re-solves
        // warm from the previous basis; every answer must match cold.
        let mut basis = None;
        for step in 0..12u32 {
            let total = 12.0 + (step as f64) * 1.7;
            let lp = lb_like(total);
            let warm = lp.solve_warm(basis.as_ref()).unwrap();
            let cold = lp.solve().unwrap();
            assert!(
                approx(warm.solution.objective, cold.objective),
                "epoch {step}: warm {} cold {}",
                warm.solution.objective,
                cold.objective
            );
            assert!(lp.is_feasible(&warm.solution.values, 1e-6));
            basis = Some(warm.basis);
        }
    }

    #[test]
    fn solution_is_feasible_for_model() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", 2.0);
        let y = lp.add_var("y", 3.0);
        let z = lp.add_var("z", 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0), (z, 1.0)], Ge, 10.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Le, 2.0);
        lp.add_constraint(vec![(z, 1.0)], Le, 7.0);
        let s = lp.solve().unwrap();
        assert!(lp.is_feasible(&s.values, 1e-6));
        assert!(approx(lp.objective_at(&s.values), s.objective));
    }
}
