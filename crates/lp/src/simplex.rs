//! Two-phase dense simplex solver.
//!
//! Standard-form reduction: every constraint is normalized to a
//! non-negative right-hand side; `≤` rows get a slack column, `≥` rows a
//! surplus plus an artificial column, `=` rows an artificial column.
//! Phase 1 minimizes the sum of artificials from the trivial basis; phase 2
//! optimizes the real objective. Pivoting uses Dantzig's rule and falls
//! back to Bland's rule after an iteration budget to guarantee termination
//! on degenerate problems.

use std::fmt;

use crate::model::{LinearProgram, Relation};

/// Numeric tolerance for pivoting and feasibility decisions.
const EPS: f64 = 1e-9;

/// Error returned by [`LinearProgram::solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// No point satisfies all constraints.
    Infeasible,
    /// The objective can be decreased without bound.
    Unbounded,
    /// The pivot-iteration budget was exhausted (numerical trouble).
    IterationLimit,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SolveError::Infeasible => "linear program is infeasible",
            SolveError::Unbounded => "linear program is unbounded",
            SolveError::IterationLimit => "simplex iteration limit exceeded",
        })
    }
}

impl std::error::Error for SolveError {}

/// An optimal solution of a [`LinearProgram`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The minimal objective value.
    pub objective: f64,
    /// Optimal values of the original variables, indexed by `VarId`.
    pub values: Vec<f64>,
    /// Pivot iterations spent across both phases.
    pub iterations: u64,
}

impl Solution {
    /// Value of one variable.
    pub fn value(&self, v: crate::model::VarId) -> f64 {
        self.values[v.index()]
    }
}

/// Dense simplex tableau: `rows × cols` coefficients, per-row rhs, and a
/// cost row kept in reduced form.
struct Tableau {
    rows: usize,
    cols: usize,
    /// a[r * cols + c]
    a: Vec<f64>,
    b: Vec<f64>,
    /// reduced costs (cost row)
    c: Vec<f64>,
    /// negative of current objective value
    obj: f64,
    /// basis[r] = column basic in row r
    basis: Vec<usize>,
    /// scratch copy of the pivot row (avoids re-borrowing `a` in `pivot`)
    prow: Vec<f64>,
    /// scratch list of the pivot row's nonzero columns
    nz: Vec<u32>,
}

impl Tableau {
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.cols + c]
    }

    fn pivot(&mut self, pr: usize, pc: usize) {
        let cols = self.cols;
        let piv = self.a[pr * cols + pc];
        debug_assert!(piv.abs() > EPS, "pivot too small");
        let inv = 1.0 / piv;
        for c in 0..cols {
            self.a[pr * cols + c] *= inv;
        }
        self.b[pr] *= inv;
        self.a[pr * cols + pc] = 1.0; // fight rounding
        // Snapshot the (scaled) pivot row and its nonzero support. Early
        // tableaus are very sparse, so restricting every row update to the
        // support — `x -= f * 0.0` can only flip the sign of a zero, which
        // no later comparison or output observes — cuts the dominant
        // O(rows x cols) cost of the solve by the row's sparsity factor.
        self.prow.clear();
        self.prow.extend_from_slice(&self.a[pr * cols..(pr + 1) * cols]);
        self.nz.clear();
        for (c, &v) in self.prow.iter().enumerate() {
            if v != 0.0 {
                self.nz.push(c as u32);
            }
        }
        for r in 0..self.rows {
            if r == pr {
                continue;
            }
            let factor = self.a[r * cols + pc];
            if factor.abs() <= EPS {
                self.a[r * cols + pc] = 0.0;
                continue;
            }
            // row_r -= factor * row_pr, on the pivot row's support only
            let row = &mut self.a[r * cols..(r + 1) * cols];
            for &c in &self.nz {
                let c = c as usize;
                row[c] -= factor * self.prow[c];
            }
            row[pc] = 0.0;
            self.b[r] -= factor * self.b[pr];
        }
        let cf = self.c[pc];
        if cf.abs() > EPS {
            for &c in &self.nz {
                let c = c as usize;
                self.c[c] -= cf * self.prow[c];
            }
            self.c[pc] = 0.0;
            self.obj -= cf * self.b[pr];
        }
        self.basis[pr] = pc;
    }

    /// Runs simplex iterations until optimal. `allowed` limits the columns
    /// eligible to enter (used to keep artificials out in phase 2).
    fn optimize(&mut self, allowed: usize, budget: &mut u64) -> Result<(), SolveError> {
        // Switch to Bland's rule after a degeneracy-scaled threshold.
        let bland_after = 4 * (self.rows as u64 + allowed as u64) + 64;
        let mut iters_here: u64 = 0;
        loop {
            if *budget == 0 {
                return Err(SolveError::IterationLimit);
            }
            let use_bland = iters_here > bland_after;
            // entering column
            let mut enter: Option<usize> = None;
            if use_bland {
                for c in 0..allowed {
                    if self.c[c] < -EPS {
                        enter = Some(c);
                        break;
                    }
                }
            } else {
                let mut best = -EPS;
                for c in 0..allowed {
                    if self.c[c] < best {
                        best = self.c[c];
                        enter = Some(c);
                    }
                }
            }
            let Some(pc) = enter else {
                return Ok(()); // optimal
            };
            // leaving row: minimal ratio; Bland tie-break on basis index
            let mut leave: Option<(f64, usize, usize)> = None; // (ratio, basis col, row)
            for r in 0..self.rows {
                let arc = self.at(r, pc);
                if arc > EPS {
                    let ratio = self.b[r] / arc;
                    let key = (ratio, self.basis[r]);
                    if leave.is_none_or(|(lr, lb, _)| key < (lr, lb)) {
                        leave = Some((ratio, self.basis[r], r));
                    }
                }
            }
            let Some((_, _, pr)) = leave else {
                return Err(SolveError::Unbounded);
            };
            self.pivot(pr, pc);
            *budget -= 1;
            iters_here += 1;
        }
    }
}

impl LinearProgram {
    /// Solves the program with the two-phase simplex method.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] if no feasible point exists,
    /// [`SolveError::Unbounded`] if the objective is unbounded below,
    /// [`SolveError::IterationLimit`] if the pivot budget is exhausted.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        let n = self.num_vars();
        let m = self.num_constraints();

        // Normalize rows to rhs >= 0 and decide column layout.
        // Layout: [original 0..n | slack/surplus | artificial]
        let mut slack_of = vec![usize::MAX; m]; // column of slack/surplus
        let mut art_of = vec![usize::MAX; m];
        let mut next = n;
        let mut rel = Vec::with_capacity(m);
        let mut rhs = Vec::with_capacity(m);
        for con in &self.constraints {
            let (r, b) = if con.rhs < 0.0 {
                // multiply by -1
                let flipped = match con.relation {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
                (flipped, -con.rhs)
            } else {
                (con.relation, con.rhs)
            };
            rel.push(r);
            rhs.push(b);
        }
        for (i, r) in rel.iter().enumerate() {
            match r {
                Relation::Le | Relation::Ge => {
                    slack_of[i] = next;
                    next += 1;
                }
                Relation::Eq => {}
            }
        }
        let first_art = next;
        for (i, r) in rel.iter().enumerate() {
            let needs_artificial = matches!(r, Relation::Ge | Relation::Eq);
            if needs_artificial {
                art_of[i] = next;
                next += 1;
            }
        }
        let cols = next;

        let mut t = Tableau {
            rows: m,
            cols,
            a: vec![0.0; m * cols],
            b: rhs,
            c: vec![0.0; cols],
            obj: 0.0,
            basis: vec![usize::MAX; m],
            prow: Vec::with_capacity(cols),
            nz: Vec::with_capacity(cols),
        };

        // Fill coefficients (terms summed; sign flipped for normalized
        // rows), then equilibrate each row by its largest |coefficient| so
        // that badly scaled models (traffic volumes in the millions next
        // to unit capacities) pivot stably.
        for (i, con) in self.constraints.iter().enumerate() {
            let sign = if con.rhs < 0.0 { -1.0 } else { 1.0 };
            for &(v, coef) in &con.terms {
                t.a[i * cols + v.index()] += sign * coef;
            }
            let row_max = (0..n)
                .map(|v| t.a[i * cols + v].abs())
                .fold(0.0f64, f64::max);
            if row_max > EPS && !(1e-4..=1e4).contains(&row_max) {
                let inv = 1.0 / row_max;
                for v in 0..n {
                    t.a[i * cols + v] *= inv;
                }
                t.b[i] *= inv;
            }
            match rel[i] {
                Relation::Le => {
                    t.a[i * cols + slack_of[i]] = 1.0;
                    t.basis[i] = slack_of[i];
                }
                Relation::Ge => {
                    t.a[i * cols + slack_of[i]] = -1.0;
                    t.a[i * cols + art_of[i]] = 1.0;
                    t.basis[i] = art_of[i];
                }
                Relation::Eq => {
                    t.a[i * cols + art_of[i]] = 1.0;
                    t.basis[i] = art_of[i];
                }
            }
        }

        let mut budget: u64 = 200 * (m as u64 + cols as u64) + 20_000;
        let mut iterations_total: u64 = 0;

        // Phase 1: minimize sum of artificials.
        if first_art < cols {
            for c in first_art..cols {
                t.c[c] = 1.0;
            }
            // Price out the artificial basis columns.
            for i in 0..m {
                if t.basis[i] >= first_art {
                    for c in 0..cols {
                        let v = t.a[i * cols + c];
                        t.c[c] -= v;
                    }
                    t.obj -= t.b[i];
                }
            }
            let before = budget;
            t.optimize(cols, &mut budget)?;
            iterations_total += before - budget;
            let phase1 = -t.obj;
            if phase1 > 1e-6 {
                return Err(SolveError::Infeasible);
            }
            // Drive any artificial still in the basis out (degenerate rows).
            for r in 0..m {
                if t.basis[r] >= first_art {
                    let mut swapped = false;
                    for c in 0..first_art {
                        if t.at(r, c).abs() > EPS {
                            t.pivot(r, c);
                            swapped = true;
                            break;
                        }
                    }
                    if !swapped {
                        // Redundant row: harmless, keep the artificial at
                        // value 0; it can never re-enter (excluded below).
                    }
                }
            }
        }

        // Phase 2: real objective, artificials excluded from entering.
        t.c = vec![0.0; cols];
        t.obj = 0.0;
        for v in 0..n {
            t.c[v] = self.objective[v];
        }
        // Price out the current basis.
        for i in 0..m {
            let bc = t.basis[i];
            let cf = t.c[bc];
            if cf.abs() > EPS {
                for c in 0..cols {
                    let v = t.a[i * cols + c];
                    t.c[c] -= cf * v;
                }
                t.c[bc] = 0.0;
                t.obj -= cf * t.b[i];
            }
        }
        let before = budget;
        t.optimize(first_art, &mut budget)?;
        iterations_total += before - budget;

        let mut values = vec![0.0; n];
        for r in 0..m {
            if t.basis[r] < n {
                values[t.basis[r]] = t.b[r].max(0.0);
            }
        }
        Ok(Solution {
            objective: -t.obj,
            values,
            iterations: iterations_total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinearProgram, Relation::*};

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn simple_minimization() {
        // min x + 2y  s.t. x + y >= 4, y <= 3  -> x=4, y=0, obj=4
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", 1.0);
        let y = lp.add_var("y", 2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Ge, 4.0);
        lp.add_constraint(vec![(y, 1.0)], Le, 3.0);
        let s = lp.solve().unwrap();
        assert!(approx(s.objective, 4.0), "{}", s.objective);
        assert!(approx(s.value(x), 4.0));
        assert!(approx(s.value(y), 0.0));
    }

    #[test]
    fn maximization_via_negation() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18 -> x=2,y=6, max=36
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", -3.0);
        let y = lp.add_var("y", -5.0);
        lp.add_constraint(vec![(x, 1.0)], Le, 4.0);
        lp.add_constraint(vec![(y, 2.0)], Le, 12.0);
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Le, 18.0);
        let s = lp.solve().unwrap();
        assert!(approx(s.objective, -36.0), "{}", s.objective);
        assert!(approx(s.value(x), 2.0));
        assert!(approx(s.value(y), 6.0));
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 6, x - y = 0 -> x=y=2, obj=4
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", 1.0);
        let y = lp.add_var("y", 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 2.0)], Eq, 6.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Eq, 0.0);
        let s = lp.solve().unwrap();
        assert!(approx(s.objective, 4.0));
        assert!(approx(s.value(x), 2.0));
        assert!(approx(s.value(y), 2.0));
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", 1.0);
        lp.add_constraint(vec![(x, 1.0)], Le, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Ge, 2.0);
        assert_eq!(lp.solve(), Err(SolveError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        // min -x with x unconstrained above
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", -1.0);
        lp.add_constraint(vec![(x, 1.0)], Ge, 0.0);
        assert_eq!(lp.solve(), Err(SolveError::Unbounded));
    }

    #[test]
    fn negative_rhs_normalized() {
        // min x s.t. -x <= -3  (i.e. x >= 3)
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", 1.0);
        lp.add_constraint(vec![(x, -1.0)], Le, -3.0);
        let s = lp.solve().unwrap();
        assert!(approx(s.value(x), 3.0));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Beale's cycling example (classic); Bland fallback must terminate.
        let mut lp = LinearProgram::new();
        let x1 = lp.add_var("x1", -0.75);
        let x2 = lp.add_var("x2", 150.0);
        let x3 = lp.add_var("x3", -0.02);
        let x4 = lp.add_var("x4", 6.0);
        lp.add_constraint(vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)], Le, 0.0);
        lp.add_constraint(vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)], Le, 0.0);
        lp.add_constraint(vec![(x3, 1.0)], Le, 1.0);
        let s = lp.solve().unwrap();
        assert!(approx(s.objective, -0.05), "{}", s.objective);
    }

    #[test]
    fn min_max_structure_like_load_balancing() {
        // Two "middleboxes" with capacities 10 and 20 must absorb 15 units;
        // min lambda with load_i <= lambda * C_i. Optimum: lambda = 0.5.
        let mut lp = LinearProgram::new();
        let t1 = lp.add_var("t1", 0.0);
        let t2 = lp.add_var("t2", 0.0);
        let lam = lp.add_var("lambda", 1.0);
        lp.add_constraint(vec![(t1, 1.0), (t2, 1.0)], Eq, 15.0);
        lp.add_constraint(vec![(t1, 1.0), (lam, -10.0)], Le, 0.0);
        lp.add_constraint(vec![(t2, 1.0), (lam, -20.0)], Le, 0.0);
        lp.add_constraint(vec![(lam, 1.0)], Le, 1.0);
        let s = lp.solve().unwrap();
        assert!(approx(s.objective, 0.5), "{}", s.objective);
        assert!(approx(s.value(t1), 5.0));
        assert!(approx(s.value(t2), 10.0));
    }

    #[test]
    fn lambda_cap_makes_overload_infeasible() {
        // 50 units into total capacity 30 with lambda <= 1: infeasible.
        let mut lp = LinearProgram::new();
        let t1 = lp.add_var("t1", 0.0);
        let t2 = lp.add_var("t2", 0.0);
        let lam = lp.add_var("lambda", 1.0);
        lp.add_constraint(vec![(t1, 1.0), (t2, 1.0)], Eq, 50.0);
        lp.add_constraint(vec![(t1, 1.0), (lam, -10.0)], Le, 0.0);
        lp.add_constraint(vec![(t2, 1.0), (lam, -20.0)], Le, 0.0);
        lp.add_constraint(vec![(lam, 1.0)], Le, 1.0);
        assert_eq!(lp.solve(), Err(SolveError::Infeasible));
    }

    #[test]
    fn redundant_equalities_ok() {
        // x + y = 4 stated twice; min x -> x=0,y=4
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", 1.0);
        let y = lp.add_var("y", 0.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Eq, 4.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Eq, 4.0);
        let s = lp.solve().unwrap();
        assert!(approx(s.objective, 0.0));
        assert!(approx(s.value(y), 4.0));
    }

    #[test]
    fn zero_variable_problem() {
        let lp = LinearProgram::new();
        let s = lp.solve().unwrap();
        assert_eq!(s.objective, 0.0);
        assert!(s.values.is_empty());
    }

    #[test]
    fn badly_scaled_rows_solve_accurately() {
        // volumes in the millions against unit capacities, mixed with a
        // tiny-coefficient row
        let mut lp = LinearProgram::new();
        let t1 = lp.add_var("t1", 0.0);
        let t2 = lp.add_var("t2", 0.0);
        let lam = lp.add_var("lambda", 1.0);
        lp.add_constraint(vec![(t1, 1.0), (t2, 1.0)], Eq, 9_000_000.0);
        lp.add_constraint(vec![(t1, 1.0), (lam, -1.0)], Le, 0.0);
        lp.add_constraint(vec![(t2, 1.0), (lam, -1.0)], Le, 0.0);
        lp.add_constraint(vec![(t1, 1e-6), (t2, -1e-6)], Le, 1.0);
        let s = lp.solve().unwrap();
        assert!(
            (s.objective - 4_500_000.0).abs() / 4_500_000.0 < 1e-9,
            "{}",
            s.objective
        );
        assert!(lp.is_feasible(&s.values, 1.0));
    }

    #[test]
    fn lp_format_contains_whole_model() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", 1.0);
        let y = lp.add_var("y", -2.0);
        lp.add_constraint(vec![(x, 1.0), (y, -3.0)], Ge, 4.0);
        lp.add_constraint(vec![(y, 1.0)], Le, 7.0);
        let text = lp.to_lp_format();
        assert!(text.contains("Minimize"), "{text}");
        assert!(text.contains("- 2 y"), "{text}");
        assert!(text.contains("1 x - 3 y >= 4"), "{text}");
        assert!(text.contains("1 y <= 7"), "{text}");
        assert!(text.contains("0 <= x"), "{text}");
        assert!(text.ends_with("End\n"), "{text}");
    }

    #[test]
    fn solution_is_feasible_for_model() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", 2.0);
        let y = lp.add_var("y", 3.0);
        let z = lp.add_var("z", 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0), (z, 1.0)], Ge, 10.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Le, 2.0);
        lp.add_constraint(vec![(z, 1.0)], Le, 7.0);
        let s = lp.solve().unwrap();
        assert!(lp.is_feasible(&s.values, 1e-6));
        assert!(approx(lp.objective_at(&s.values), s.objective));
    }
}
