//! Property tests for the simplex solver: on randomly generated LPs that
//! are feasible *by construction*, the solver must return a feasible point
//! whose objective is no worse than the construction witness.

use sdm_lp::{LinearProgram, Relation, SolveError};
use sdm_util::prop::{check, Config};
use sdm_util::prop_assert;
use sdm_util::rng::StdRng;

/// A random LP built around a known feasible witness `x0 >= 0`:
/// each constraint's rhs is chosen relative to `A x0` so `x0` satisfies it.
#[derive(Debug, Clone)]
struct FeasibleInstance {
    lp: LinearProgram,
    witness: Vec<f64>,
}

/// Deterministically expands `(vars, constraints, seed)` into an instance.
/// The shrinkable tuple is what the harness sees; the LP is rebuilt inside
/// the property, so shrinking reduces the *dimensions* of the instance.
fn feasible_lp(n: usize, m: usize, seed: u64) -> FeasibleInstance {
    let mut s = seed;
    let mut next = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((s >> 33) as f64 / (1u64 << 31) as f64) * 2.0 - 1.0 // [-1, 1)
    };
    let mut lp = LinearProgram::new();
    let witness: Vec<f64> = (0..n).map(|_| (next().abs() * 10.0).round()).collect();
    let vars: Vec<_> = (0..n)
        .map(|i| lp.add_var(format!("x{i}"), (next() * 5.0).round()))
        .collect();
    for _ in 0..m {
        let terms: Vec<_> = vars
            .iter()
            .map(|&v| (v, (next() * 4.0).round()))
            .filter(|&(_, c)| c != 0.0)
            .collect();
        if terms.is_empty() {
            continue;
        }
        let lhs_at_witness: f64 = terms
            .iter()
            .map(|&(v, c)| c * witness[v.index()])
            .sum();
        let slackness = (next().abs() * 5.0).round();
        // pick a relation satisfied by the witness
        let kind = (next().abs() * 3.0) as u8;
        match kind {
            0 => lp.add_constraint(terms, Relation::Le, lhs_at_witness + slackness),
            1 => lp.add_constraint(terms, Relation::Ge, lhs_at_witness - slackness),
            _ => lp.add_constraint(terms, Relation::Eq, lhs_at_witness),
        }
    }
    FeasibleInstance { lp, witness }
}

/// The solver never reports infeasible on a constructively feasible LP;
/// when it returns a solution, the point satisfies the model and is at
/// least as good as the witness.
#[test]
fn solves_feasible_instances() {
    check(
        "solves_feasible_instances",
        &Config::with_cases(256),
        |rng: &mut StdRng| {
            (
                rng.gen_range(1usize..8),  // vars
                rng.gen_range(1usize..10), // constraints
                rng.next_u64(),            // seed
            )
        },
        |&(n, m, seed)| {
            let inst = feasible_lp(n.max(1), m.max(1), seed);
            match inst.lp.solve() {
                Ok(sol) => {
                    prop_assert!(
                        inst.lp.is_feasible(&sol.values, 1e-5),
                        "solver returned infeasible point {:?}",
                        sol.values
                    );
                    let witness_obj = inst.lp.objective_at(&inst.witness);
                    prop_assert!(
                        sol.objective <= witness_obj + 1e-5,
                        "objective {} worse than witness {}",
                        sol.objective,
                        witness_obj
                    );
                    prop_assert!(
                        (inst.lp.objective_at(&sol.values) - sol.objective).abs() < 1e-5
                    );
                }
                Err(SolveError::Unbounded) => {
                    // Possible: random objectives can be unbounded below. To
                    // certify, check some improving ray exists by re-solving a
                    // bounded variant (add sum of vars <= BIG); its optimum must
                    // beat the witness substantially.
                    let mut bounded = inst.lp.clone();
                    let all: Vec<_> = (0..bounded.num_vars())
                        .map(|i| (sdm_lp::VarId::from_index(i), 1.0))
                        .collect();
                    bounded.add_constraint(all, Relation::Le, 1e7);
                    let sol = bounded.solve().expect("bounded variant must solve");
                    prop_assert!(bounded.is_feasible(&sol.values, 1e-4));
                }
                Err(e) => prop_assert!(false, "unexpected error {e} on feasible LP"),
            }
            Ok(())
        },
    );
}
