//! Property-based tests for the topology substrate: shortest-path routing
//! invariants on random connected graphs, and generator invariants.

use proptest::prelude::*;
use sdm_topology::waxman::{waxman_with, WaxmanConfig};
use sdm_topology::{NodeId, NodeKind, Topology};

/// Builds a random connected graph: a random spanning tree plus extra links.
fn arb_connected_graph() -> impl Strategy<Value = Topology> {
    (2usize..24, any::<u64>()).prop_map(|(n, seed)| {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as usize
        };
        let mut t = Topology::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| t.add_node(NodeKind::CoreRouter, format!("n{i}")))
            .collect();
        // spanning tree
        for i in 1..n {
            let parent = next() % i;
            let cost = 1 + (next() % 10) as u32;
            t.add_link(ids[i], ids[parent], cost).unwrap();
        }
        // extra links
        let extra = next() % (n * 2);
        for _ in 0..extra {
            let a = ids[next() % n];
            let b = ids[next() % n];
            if a != b && !t.has_link(a, b) {
                let cost = 1 + (next() % 10) as u32;
                t.add_link(a, b, cost).unwrap();
            }
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shortest-path distances are symmetric on an undirected graph.
    #[test]
    fn distances_symmetric(t in arb_connected_graph()) {
        let rt = t.routing_tables();
        for a in t.nodes() {
            for b in t.nodes() {
                prop_assert_eq!(rt.dist(a, b), rt.dist(b, a));
            }
        }
    }

    /// Distances obey the triangle inequality.
    #[test]
    fn triangle_inequality(t in arb_connected_graph()) {
        let rt = t.routing_tables();
        let nodes: Vec<_> = t.nodes().collect();
        for &a in &nodes {
            for &b in &nodes {
                for &c in &nodes {
                    let (ab, bc, ac) = (
                        rt.dist(a, b).unwrap(),
                        rt.dist(b, c).unwrap(),
                        rt.dist(a, c).unwrap(),
                    );
                    prop_assert!(ac <= ab + bc);
                }
            }
        }
    }

    /// Reconstructed paths are loop-free, start/end correctly, follow real
    /// links, and their link costs sum to the reported distance.
    #[test]
    fn paths_are_valid(t in arb_connected_graph()) {
        let rt = t.routing_tables();
        let nodes: Vec<_> = t.nodes().collect();
        for &a in &nodes {
            for &b in &nodes {
                let p = rt.path(a, b).unwrap();
                prop_assert_eq!(*p.nodes().first().unwrap(), a);
                prop_assert_eq!(*p.nodes().last().unwrap(), b);
                let mut seen = std::collections::HashSet::new();
                for &n in p.nodes() {
                    prop_assert!(seen.insert(n), "loop in path");
                }
                let mut cost = 0u32;
                for w in p.nodes().windows(2) {
                    let link_cost = t
                        .neighbors(w[0])
                        .find(|&(m, _)| m == w[1])
                        .map(|(_, c)| c);
                    prop_assert!(link_cost.is_some(), "path uses non-existent link");
                    cost += link_cost.unwrap();
                }
                prop_assert_eq!(cost, p.cost());
                prop_assert_eq!(Some(p.cost()), rt.dist(a, b));
            }
        }
    }

    /// Greedy next-hop forwarding strictly decreases the distance to the
    /// destination — i.e. hop-by-hop forwarding cannot loop.
    #[test]
    fn next_hop_decreases_distance(t in arb_connected_graph()) {
        let rt = t.routing_tables();
        let nodes: Vec<_> = t.nodes().collect();
        for &a in &nodes {
            for &b in &nodes {
                if a == b { continue; }
                let nh = rt.next_hop(a, b).unwrap();
                prop_assert!(rt.dist(nh, b).unwrap() < rt.dist(a, b).unwrap());
            }
        }
    }

    /// k_closest returns candidates sorted by distance and of the right size.
    #[test]
    fn k_closest_sorted(t in arb_connected_graph(), k in 1usize..6) {
        let rt = t.routing_tables();
        let nodes: Vec<_> = t.nodes().collect();
        let from = nodes[0];
        let got = rt.k_closest(from, nodes.iter().copied().skip(1), k);
        prop_assert_eq!(got.len(), k.min(nodes.len() - 1));
        for w in got.windows(2) {
            prop_assert!(rt.dist(from, w[0]).unwrap() <= rt.dist(from, w[1]).unwrap());
        }
    }

    /// Waxman generation is connected and respects counts for any valid size.
    #[test]
    fn waxman_always_connected(cores in 2usize..12, per_core in 1usize..5, seed in any::<u64>()) {
        let cfg = WaxmanConfig {
            cores,
            edges: cores * per_core,
            ..WaxmanConfig::default()
        };
        let plan = waxman_with(&cfg, seed);
        prop_assert!(plan.topology().is_connected());
        prop_assert_eq!(plan.edges().len(), cores * per_core);
    }
}
