//! Property-based tests for the topology substrate: shortest-path routing
//! invariants on random connected graphs, and generator invariants.

use sdm_topology::waxman::{waxman_with, WaxmanConfig};
use sdm_topology::{NodeId, NodeKind, Topology};
use sdm_util::prop::{check, Config};
use sdm_util::rng::StdRng;
use sdm_util::{prop_assert, prop_assert_eq};

/// Deterministically expands `(n, seed)` into a random connected graph:
/// a random spanning tree plus extra links. Rebuilt inside each property,
/// so the harness shrinks the node count and seed.
fn connected_graph(n: usize, seed: u64) -> Topology {
    let n = n.max(2);
    let mut s = seed;
    let mut next = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (s >> 33) as usize
    };
    let mut t = Topology::new();
    let ids: Vec<NodeId> = (0..n)
        .map(|i| t.add_node(NodeKind::CoreRouter, format!("n{i}")))
        .collect();
    // spanning tree
    for i in 1..n {
        let parent = next() % i;
        let cost = 1 + (next() % 10) as u32;
        t.add_link(ids[i], ids[parent], cost).unwrap();
    }
    // extra links
    let extra = next() % (n * 2);
    for _ in 0..extra {
        let a = ids[next() % n];
        let b = ids[next() % n];
        if a != b && !t.has_link(a, b) {
            let cost = 1 + (next() % 10) as u32;
            t.add_link(a, b, cost).unwrap();
        }
    }
    t
}

fn arb_graph_input(rng: &mut StdRng) -> (usize, u64) {
    (rng.gen_range(2usize..24), rng.next_u64())
}

/// Shortest-path distances are symmetric on an undirected graph.
#[test]
fn distances_symmetric() {
    check(
        "distances_symmetric",
        &Config::with_cases(64),
        arb_graph_input,
        |&(n, seed)| {
            let t = connected_graph(n, seed);
            let rt = t.routing_tables();
            for a in t.nodes() {
                for b in t.nodes() {
                    prop_assert_eq!(rt.dist(a, b), rt.dist(b, a));
                }
            }
            Ok(())
        },
    );
}

/// Distances obey the triangle inequality.
#[test]
fn triangle_inequality() {
    check(
        "triangle_inequality",
        &Config::with_cases(64),
        arb_graph_input,
        |&(n, seed)| {
            let t = connected_graph(n, seed);
            let rt = t.routing_tables();
            let nodes: Vec<_> = t.nodes().collect();
            for &a in &nodes {
                for &b in &nodes {
                    for &c in &nodes {
                        let (ab, bc, ac) = (
                            rt.dist(a, b).unwrap(),
                            rt.dist(b, c).unwrap(),
                            rt.dist(a, c).unwrap(),
                        );
                        prop_assert!(ac <= ab + bc);
                    }
                }
            }
            Ok(())
        },
    );
}

/// Reconstructed paths are loop-free, start/end correctly, follow real
/// links, and their link costs sum to the reported distance.
#[test]
fn paths_are_valid() {
    check(
        "paths_are_valid",
        &Config::with_cases(64),
        arb_graph_input,
        |&(n, seed)| {
            let t = connected_graph(n, seed);
            let rt = t.routing_tables();
            let nodes: Vec<_> = t.nodes().collect();
            for &a in &nodes {
                for &b in &nodes {
                    let p = rt.path(a, b).unwrap();
                    prop_assert_eq!(*p.nodes().first().unwrap(), a);
                    prop_assert_eq!(*p.nodes().last().unwrap(), b);
                    let mut seen = std::collections::HashSet::new();
                    for &n in p.nodes() {
                        prop_assert!(seen.insert(n), "loop in path");
                    }
                    let mut cost = 0u32;
                    for w in p.nodes().windows(2) {
                        let link_cost = t
                            .neighbors(w[0])
                            .find(|&(m, _)| m == w[1])
                            .map(|(_, c)| c);
                        prop_assert!(link_cost.is_some(), "path uses non-existent link");
                        cost += link_cost.unwrap();
                    }
                    prop_assert_eq!(cost, p.cost());
                    prop_assert_eq!(Some(p.cost()), rt.dist(a, b));
                }
            }
            Ok(())
        },
    );
}

/// Greedy next-hop forwarding strictly decreases the distance to the
/// destination — i.e. hop-by-hop forwarding cannot loop.
#[test]
fn next_hop_decreases_distance() {
    check(
        "next_hop_decreases_distance",
        &Config::with_cases(64),
        arb_graph_input,
        |&(n, seed)| {
            let t = connected_graph(n, seed);
            let rt = t.routing_tables();
            let nodes: Vec<_> = t.nodes().collect();
            for &a in &nodes {
                for &b in &nodes {
                    if a == b {
                        continue;
                    }
                    let nh = rt.next_hop(a, b).unwrap();
                    prop_assert!(rt.dist(nh, b).unwrap() < rt.dist(a, b).unwrap());
                }
            }
            Ok(())
        },
    );
}

/// k_closest returns candidates sorted by distance and of the right size.
#[test]
fn k_closest_sorted() {
    check(
        "k_closest_sorted",
        &Config::with_cases(64),
        |rng: &mut StdRng| (rng.gen_range(2usize..24), rng.next_u64(), rng.gen_range(1usize..6)),
        |&(n, seed, k)| {
            let k = k.max(1);
            let t = connected_graph(n, seed);
            let rt = t.routing_tables();
            let nodes: Vec<_> = t.nodes().collect();
            let from = nodes[0];
            let got = rt.k_closest(from, nodes.iter().copied().skip(1), k);
            prop_assert_eq!(got.len(), k.min(nodes.len() - 1));
            for w in got.windows(2) {
                prop_assert!(rt.dist(from, w[0]).unwrap() <= rt.dist(from, w[1]).unwrap());
            }
            Ok(())
        },
    );
}

/// Waxman generation is connected and respects counts for any valid size.
#[test]
fn waxman_always_connected() {
    check(
        "waxman_always_connected",
        &Config::with_cases(64),
        |rng: &mut StdRng| {
            (
                rng.gen_range(2usize..12),
                rng.gen_range(1usize..5),
                rng.next_u64(),
            )
        },
        |&(cores, per_core, seed)| {
            let (cores, per_core) = (cores.max(2), per_core.max(1));
            let cfg = WaxmanConfig {
                cores,
                edges: cores * per_core,
                ..WaxmanConfig::default()
            };
            let plan = waxman_with(&cfg, seed);
            prop_assert!(plan.topology().is_connected());
            prop_assert_eq!(plan.edges().len(), cores * per_core);
            Ok(())
        },
    );
}
