//! A two-tier redundant enterprise topology: pairs of distribution (core)
//! routers, each edge router dual-homed to one pair, pairs fully meshed
//! among themselves and to the gateways — the textbook
//! "collapsed-core/distribution" enterprise design. Not used by the
//! paper's evaluation, but a realistic third network for users of this
//! library (and for robustness checks of the enforcement machinery on a
//! different diameter/redundancy profile).

use crate::graph::{NodeKind, Topology};
use crate::plan::NetworkPlan;

/// Parameters of the two-tier generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoTierConfig {
    /// Number of distribution *pairs* (2 pairs = 4 core routers).
    pub pairs: usize,
    /// Edge routers per pair, each dual-homed to both routers of its pair.
    pub edges_per_pair: usize,
    /// Number of Internet gateways, connected to every distribution router.
    pub gateways: usize,
}

impl Default for TwoTierConfig {
    fn default() -> Self {
        TwoTierConfig {
            pairs: 4,
            edges_per_pair: 6,
            gateways: 2,
        }
    }
}

/// Generates a two-tier enterprise network.
///
/// Deterministic (no randomness: the design is fully regular).
///
/// # Panics
///
/// Panics if `pairs == 0` or `edges_per_pair == 0`.
///
/// # Example
///
/// ```
/// use sdm_topology::two_tier::{two_tier, TwoTierConfig};
/// let plan = two_tier(TwoTierConfig::default());
/// assert_eq!(plan.cores().len(), 8);
/// assert_eq!(plan.edges().len(), 24);
/// assert!(plan.topology().is_connected());
/// ```
pub fn two_tier(config: TwoTierConfig) -> NetworkPlan {
    assert!(config.pairs > 0, "need at least one distribution pair");
    assert!(config.edges_per_pair > 0, "need edge routers");
    let mut t = Topology::new();

    let gateways: Vec<_> = (0..config.gateways)
        .map(|i| t.add_node(NodeKind::Gateway, format!("gw{i}")))
        .collect();
    let mut cores = Vec::with_capacity(config.pairs * 2);
    for p in 0..config.pairs {
        let a = t.add_node(NodeKind::CoreRouter, format!("dist{p}a"));
        let b = t.add_node(NodeKind::CoreRouter, format!("dist{p}b"));
        t.add_link(a, b, 1).expect("pair link");
        cores.push(a);
        cores.push(b);
    }
    // full mesh between pairs (one link per router pair across pairs)
    for i in 0..cores.len() {
        for j in (i + 1)..cores.len() {
            // skip intra-pair (already linked) and thin the mesh: connect
            // routers of different pairs with matching polarity plus the
            // cross link from each pair's 'a' to the next pair's 'b'
            let (pi, pj) = (i / 2, j / 2);
            if pi == pj {
                continue;
            }
            let same_polarity = (i % 2) == (j % 2);
            let adjacent_cross = (i % 2 == 0) && (j % 2 == 1) && pj == pi + 1;
            if same_polarity || adjacent_cross {
                t.add_link(cores[i], cores[j], 1).expect("mesh link");
            }
        }
    }
    // every distribution router uplinks to every gateway
    for &c in &cores {
        for &g in &gateways {
            t.add_link(c, g, 1).expect("gateway uplink");
        }
    }
    // edge routers dual-homed to their pair
    let mut edges = Vec::with_capacity(config.pairs * config.edges_per_pair);
    for p in 0..config.pairs {
        for e in 0..config.edges_per_pair {
            let n = t.add_node(NodeKind::EdgeRouter, format!("edge{p}_{e}"));
            t.add_link(n, cores[2 * p], 1).expect("uplink a");
            t.add_link(n, cores[2 * p + 1], 1).expect("uplink b");
            edges.push(n);
        }
    }
    debug_assert!(t.is_connected());
    NetworkPlan::new(t, gateways, cores, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shape() {
        let plan = two_tier(TwoTierConfig::default());
        assert_eq!(plan.gateways().len(), 2);
        assert_eq!(plan.cores().len(), 8);
        assert_eq!(plan.edges().len(), 24);
        assert!(plan.topology().is_connected());
        // every edge is dual-homed
        for &e in plan.edges() {
            assert_eq!(plan.topology().degree(e), 2);
        }
    }

    #[test]
    fn pair_redundancy_survives_one_distribution_router_link() {
        let plan = two_tier(TwoTierConfig::default());
        let t = plan.topology();
        // failing one uplink of an edge still leaves it connected via the
        // pair's other router
        let e = plan.edges()[0];
        let (first_uplink, _) = t.neighbors(e).next().unwrap();
        let link = (0..t.link_count())
            .map(crate::LinkId::from_index)
            .find(|&l| {
                let (a, b, _) = t.link(l);
                (a == e && b == first_uplink) || (b == e && a == first_uplink)
            })
            .unwrap();
        let rt = t.routing_tables_excluding(&[link]);
        for &other in plan.edges().iter().skip(1) {
            assert!(rt.dist(e, other).is_some(), "reachable after uplink loss");
        }
    }

    #[test]
    fn diameter_is_small() {
        let plan = two_tier(TwoTierConfig {
            pairs: 6,
            edges_per_pair: 4,
            gateways: 2,
        });
        let rt = plan.topology().routing_tables();
        for &a in plan.edges() {
            for &b in plan.edges() {
                assert!(rt.dist(a, b).unwrap() <= 4, "two-tier diameter bound");
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = two_tier(TwoTierConfig::default());
        let b = two_tier(TwoTierConfig::default());
        assert_eq!(a.topology().link_count(), b.topology().link_count());
    }

    #[test]
    #[should_panic(expected = "distribution pair")]
    fn rejects_zero_pairs() {
        let _ = two_tier(TwoTierConfig {
            pairs: 0,
            ..Default::default()
        });
    }
}
