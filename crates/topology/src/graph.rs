//! The network graph: typed nodes connected by weighted, undirected links.

use std::fmt;

/// Identifier of a node (router or gateway) inside a [`Topology`].
///
/// Node ids are dense indices assigned in insertion order; they are only
/// meaningful relative to the topology that issued them.
///
/// # Example
///
/// ```
/// use sdm_topology::{Topology, NodeKind};
/// let mut t = Topology::new();
/// let id = t.add_node(NodeKind::CoreRouter, "c0");
/// assert_eq!(id.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a dense index.
    ///
    /// Intended for iterating over `0..topology.node_count()`; an id that
    /// does not correspond to an existing node will be rejected by the
    /// topology methods it is passed to.
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an undirected link inside a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub(crate) u32);

impl LinkId {
    /// Returns the dense index of this link.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `LinkId` from a dense index (valid for
    /// `0..topology.link_count()`).
    pub fn from_index(index: usize) -> Self {
        LinkId(index as u32)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// The role a node plays in the traditional network.
///
/// The paper's model (§II) distinguishes *edge routers* that connect stub
/// networks from *core routers* that interconnect them; gateways connect the
/// enterprise to the Internet. Only edge routers host stub subnets (and thus
/// policy proxies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Internet gateway of the enterprise network.
    Gateway,
    /// Core router: interconnects edge routers, never hosts a stub subnet.
    CoreRouter,
    /// Edge router: connects one stub network to the core.
    EdgeRouter,
}

impl NodeKind {
    /// Whether a stub network (and hence a policy proxy) sits behind this node.
    pub fn hosts_stub(self) -> bool {
        matches!(self, NodeKind::EdgeRouter)
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::Gateway => "gateway",
            NodeKind::CoreRouter => "core",
            NodeKind::EdgeRouter => "edge",
        };
        f.write_str(s)
    }
}

/// Error returned by [`Topology`] mutation and query methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A referenced node id does not exist in this topology.
    UnknownNode(NodeId),
    /// A link would connect a node to itself.
    SelfLoop(NodeId),
    /// The two nodes are already directly connected.
    DuplicateLink(NodeId, NodeId),
    /// A link cost of zero was supplied; OSPF costs are strictly positive.
    ZeroCost,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TopologyError::SelfLoop(n) => write!(f, "self-loop at node {n}"),
            TopologyError::DuplicateLink(a, b) => {
                write!(f, "duplicate link between {a} and {b}")
            }
            TopologyError::ZeroCost => write!(f, "link cost must be strictly positive"),
        }
    }
}

impl std::error::Error for TopologyError {}

#[derive(Debug, Clone)]
struct NodeInfo {
    kind: NodeKind,
    name: String,
}

/// An undirected link with an OSPF-style additive cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Link {
    pub a: NodeId,
    pub b: NodeId,
    pub cost: u32,
}

/// An undirected, weighted network graph with typed nodes.
///
/// Nodes are added with [`Topology::add_node`] and connected with
/// [`Topology::add_link`]; both return dense ids. The graph is simple (no
/// self-loops, no parallel links) and link costs are strictly positive, the
/// preconditions OSPF shortest-path computation relies on.
///
/// # Example
///
/// ```
/// use sdm_topology::{Topology, NodeKind};
///
/// let mut t = Topology::new();
/// let e0 = t.add_node(NodeKind::EdgeRouter, "e0");
/// let c0 = t.add_node(NodeKind::CoreRouter, "c0");
/// t.add_link(e0, c0, 1)?;
/// assert_eq!(t.node_count(), 2);
/// assert_eq!(t.neighbors(e0).count(), 1);
/// # Ok::<(), sdm_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<NodeInfo>,
    links: Vec<Link>,
    /// adjacency: for each node, (neighbor, link id, cost)
    adj: Vec<Vec<(NodeId, LinkId, u32)>>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node of the given kind and returns its id.
    ///
    /// `name` is a human-readable label used in `Display` output and error
    /// messages; it need not be unique.
    pub fn add_node(&mut self, kind: NodeKind, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeInfo {
            kind,
            name: name.into(),
        });
        self.adj.push(Vec::new());
        id
    }

    /// Connects two nodes with an undirected link of the given cost.
    ///
    /// # Errors
    ///
    /// Returns an error if either node is unknown, if `a == b`, if the two
    /// nodes are already connected, or if `cost` is zero.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, cost: u32) -> Result<LinkId, TopologyError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(TopologyError::SelfLoop(a));
        }
        if cost == 0 {
            return Err(TopologyError::ZeroCost);
        }
        if self.adj[a.index()].iter().any(|&(n, _, _)| n == b) {
            return Err(TopologyError::DuplicateLink(a, b));
        }
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link { a, b, cost });
        self.adj[a.index()].push((b, id, cost));
        self.adj[b.index()].push((a, id, cost));
        Ok(id)
    }

    /// Returns true if nodes `a` and `b` are directly connected.
    pub fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        a.index() < self.adj.len() && self.adj[a.index()].iter().any(|&(n, _, _)| n == b)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The kind of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not issued by this topology.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.nodes[node.index()].kind
    }

    /// The human-readable name of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not issued by this topology.
    pub fn name(&self, node: NodeId) -> &str {
        &self.nodes[node.index()].name
    }

    /// Iterates over all node ids in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates over all node ids of the given kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(move |(_, n)| n.kind == kind)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Iterates over the neighbors of `node` as `(neighbor, cost)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not issued by this topology.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.adj[node.index()].iter().map(|&(n, _, c)| (n, c))
    }

    /// The degree (number of incident links) of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not issued by this topology.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adj[node.index()].len()
    }

    /// Returns the endpoints and cost of a link.
    ///
    /// # Panics
    ///
    /// Panics if `link` was not issued by this topology.
    pub fn link(&self, link: LinkId) -> (NodeId, NodeId, u32) {
        let l = self.links[link.index()];
        (l.a, l.b, l.cost)
    }

    /// True if the graph is connected (or empty).
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for &(m, _, _) in &self.adj[n.index()] {
                if !seen[m.index()] {
                    seen[m.index()] = true;
                    count += 1;
                    stack.push(m);
                }
            }
        }
        count == self.nodes.len()
    }

    fn check_node(&self, n: NodeId) -> Result<(), TopologyError> {
        if n.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(TopologyError::UnknownNode(n))
        }
    }

    pub(crate) fn adjacency(&self, node: NodeId) -> &[(NodeId, LinkId, u32)] {
        &self.adj[node.index()]
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "topology: {} nodes, {} links",
            self.node_count(),
            self.link_count()
        )?;
        for (i, n) in self.nodes.iter().enumerate() {
            writeln!(f, "  n{} [{}] {}", i, n.kind, n.name)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::EdgeRouter, "a");
        let b = t.add_node(NodeKind::CoreRouter, "b");
        let c = t.add_node(NodeKind::EdgeRouter, "c");
        t.add_link(a, b, 1).unwrap();
        t.add_link(b, c, 2).unwrap();
        t.add_link(a, c, 5).unwrap();
        (t, a, b, c)
    }

    #[test]
    fn adds_nodes_and_links() {
        let (t, a, b, c) = triangle();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 3);
        assert_eq!(t.kind(a), NodeKind::EdgeRouter);
        assert_eq!(t.kind(b), NodeKind::CoreRouter);
        assert_eq!(t.name(c), "c");
        assert_eq!(t.degree(b), 2);
        assert!(t.has_link(a, b));
        assert!(t.has_link(b, a));
    }

    #[test]
    fn rejects_self_loop() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::CoreRouter, "a");
        assert_eq!(t.add_link(a, a, 1), Err(TopologyError::SelfLoop(a)));
    }

    #[test]
    fn rejects_duplicate_link() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::CoreRouter, "a");
        let b = t.add_node(NodeKind::CoreRouter, "b");
        t.add_link(a, b, 1).unwrap();
        assert_eq!(t.add_link(b, a, 2), Err(TopologyError::DuplicateLink(b, a)));
    }

    #[test]
    fn rejects_zero_cost() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::CoreRouter, "a");
        let b = t.add_node(NodeKind::CoreRouter, "b");
        assert_eq!(t.add_link(a, b, 0), Err(TopologyError::ZeroCost));
    }

    #[test]
    fn rejects_unknown_node() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::CoreRouter, "a");
        let ghost = NodeId(7);
        assert_eq!(t.add_link(a, ghost, 1), Err(TopologyError::UnknownNode(ghost)));
    }

    #[test]
    fn connectivity() {
        let (t, ..) = triangle();
        assert!(t.is_connected());
        let mut t2 = t.clone();
        let d = t2.add_node(NodeKind::EdgeRouter, "d");
        assert!(!t2.is_connected());
        let a = NodeId(0);
        t2.add_link(a, d, 1).unwrap();
        assert!(t2.is_connected());
    }

    #[test]
    fn empty_topology_is_connected() {
        assert!(Topology::new().is_connected());
    }

    #[test]
    fn nodes_of_kind_filters() {
        let (t, a, _, c) = triangle();
        let edges: Vec<_> = t.nodes_of_kind(NodeKind::EdgeRouter).collect();
        assert_eq!(edges, vec![a, c]);
        assert_eq!(t.nodes_of_kind(NodeKind::Gateway).count(), 0);
    }

    #[test]
    fn display_is_nonempty() {
        let (t, ..) = triangle();
        let s = t.to_string();
        assert!(s.contains("3 nodes"));
        assert!(s.contains("edge"));
    }
}
