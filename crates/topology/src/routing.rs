//! OSPF-style shortest-path routing: Dijkstra per source with deterministic
//! tie-breaking, yielding all-pairs distances and next-hop tables.
//!
//! Routers in the paper's model forward packets along OSPF shortest paths and
//! are oblivious to policies. All steering decisions made by proxies and
//! middleboxes therefore ride on these tables.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::{NodeId, Topology};

/// A loop-free path through the network, as a sequence of node ids from
/// source to destination (both inclusive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    nodes: Vec<NodeId>,
    cost: u32,
}

impl Path {
    /// The nodes along the path, source first, destination last.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Total additive cost of the path.
    pub fn cost(&self) -> u32 {
        self.cost
    }

    /// Number of hops (links) traversed.
    pub fn hops(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }
}

/// All-pairs shortest-path routing state, as computed by every OSPF router
/// from the flooded link-state database.
///
/// Tie-breaking is deterministic: among equal-cost paths the one whose next
/// hop has the smallest node id is chosen, recursively. This mirrors a fixed
/// ECMP-free OSPF configuration and makes simulations reproducible.
///
/// # Example
///
/// ```
/// use sdm_topology::{Topology, NodeKind};
/// let mut t = Topology::new();
/// let a = t.add_node(NodeKind::EdgeRouter, "a");
/// let b = t.add_node(NodeKind::CoreRouter, "b");
/// let c = t.add_node(NodeKind::EdgeRouter, "c");
/// t.add_link(a, b, 1).unwrap();
/// t.add_link(b, c, 1).unwrap();
/// let rt = t.routing_tables();
/// let p = rt.path(a, c).unwrap();
/// assert_eq!(p.nodes(), &[a, b, c]);
/// assert_eq!(p.cost(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct RoutingTables {
    n: usize,
    /// dist[src * n + dst]; u32::MAX means unreachable.
    dist: Vec<u32>,
    /// next[src * n + dst]; u32::MAX means none (unreachable or src == dst).
    next: Vec<u32>,
}

const UNREACHABLE: u32 = u32::MAX;

impl RoutingTables {
    pub(crate) fn compute(topo: &Topology) -> Self {
        Self::compute_excluding(topo, &[])
    }

    /// Computes tables as if the listed links did not exist — what OSPF
    /// converges to after those links fail.
    pub(crate) fn compute_excluding(topo: &Topology, excluded: &[crate::LinkId]) -> Self {
        let n = topo.node_count();
        let mut dist = vec![UNREACHABLE; n * n];
        let mut next = vec![UNREACHABLE; n * n];
        let excluded: std::collections::HashSet<crate::LinkId> =
            excluded.iter().copied().collect();
        for src in 0..n {
            Self::dijkstra(
                topo,
                NodeId(src as u32),
                &excluded,
                &mut dist[src * n..(src + 1) * n],
                &mut next[src * n..(src + 1) * n],
            );
        }
        RoutingTables { n, dist, next }
    }

    /// Single-source Dijkstra writing distance and first-hop rows.
    ///
    /// The first hop is propagated from parent to child; ties are broken by
    /// preferring the smaller (distance, predecessor id, node id) triple, so
    /// the outcome is independent of heap pop order.
    fn dijkstra(
        topo: &Topology,
        src: NodeId,
        excluded: &std::collections::HashSet<crate::LinkId>,
        dist: &mut [u32],
        next: &mut [u32],
    ) {
        // (distance, node) min-heap; deterministic because on equal distance
        // the smaller node id pops first.
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        let mut pred: Vec<u32> = vec![UNREACHABLE; dist.len()];
        dist[src.index()] = 0;
        heap.push(Reverse((0, src.0)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for &(v, link, c) in topo.adjacency(NodeId(u)) {
                if excluded.contains(&link) {
                    continue;
                }
                let nd = d.saturating_add(c);
                let better = nd < dist[v.index()]
                    || (nd == dist[v.index()] && u < pred[v.index()]);
                if better {
                    dist[v.index()] = nd;
                    pred[v.index()] = u;
                    next[v.index()] = if u == src.0 { v.0 } else { next[u as usize] };
                    heap.push(Reverse((nd, v.0)));
                }
            }
        }
    }

    /// Shortest-path cost from `src` to `dst`, or `None` if unreachable.
    pub fn dist(&self, src: NodeId, dst: NodeId) -> Option<u32> {
        if src == dst {
            return Some(0);
        }
        match self.dist[src.index() * self.n + dst.index()] {
            UNREACHABLE => None,
            d => Some(d),
        }
    }

    /// The neighbor `src` forwards to when routing towards `dst`, or `None`
    /// if `dst` is unreachable or equals `src`.
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        if src == dst {
            return None;
        }
        match self.next[src.index() * self.n + dst.index()] {
            UNREACHABLE => None,
            v => Some(NodeId(v)),
        }
    }

    /// Reconstructs the full shortest path from `src` to `dst` by chaining
    /// next-hop lookups, or `None` if unreachable.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<Path> {
        if src == dst {
            return Some(Path {
                nodes: vec![src],
                cost: 0,
            });
        }
        let cost = self.dist(src, dst)?;
        let mut nodes = vec![src];
        let mut cur = src;
        while cur != dst {
            cur = self.next_hop(cur, dst)?;
            nodes.push(cur);
            if nodes.len() > self.n {
                // Defensive: a routing loop would indicate an internal bug.
                return None;
            }
        }
        Some(Path { nodes, cost })
    }

    /// Among `candidates`, returns the `k` closest to `from` (by routing
    /// distance, ties broken by node id), closest first. Unreachable
    /// candidates are skipped; fewer than `k` may be returned.
    ///
    /// This implements the controller's `M_x^e` construction (§III.C): the
    /// `k` closest middleboxes offering a function. With `k == 1` it yields
    /// the hot-potato assignment `m_x^e`.
    pub fn k_closest(
        &self,
        from: NodeId,
        candidates: impl IntoIterator<Item = NodeId>,
        k: usize,
    ) -> Vec<NodeId> {
        let mut with_dist: Vec<(u32, NodeId)> = candidates
            .into_iter()
            .filter_map(|c| self.dist(from, c).map(|d| (d, c)))
            .collect();
        with_dist.sort_by_key(|&(d, id)| (d, id));
        with_dist.truncate(k);
        with_dist.into_iter().map(|(_, id)| id).collect()
    }

    /// Number of nodes these tables cover.
    pub fn node_count(&self) -> usize {
        self.n
    }
}

/// On-demand per-destination routing rows: the checker-consumable export
/// of OSPF forwarding for topologies where the all-pairs tables of
/// [`RoutingTables`] would not fit (at ~21k nodes the dense `n²` arrays
/// run to gigabytes; a static checker only ever asks about a handful of
/// destinations — middlebox attachment routers and assertion endpoints).
///
/// One Dijkstra rooted at the *destination* yields, for every node `v`,
/// the neighbor `v` forwards to when routing towards that destination
/// (on an undirected graph the shortest `v → dst` path is the reverse of
/// the tree path, so the forwarding hop is `v`'s tree predecessor). Rows
/// are cached per destination, so asking many `(src, dst)` pairs with few
/// distinct destinations stays cheap.
///
/// Tie-breaking is deterministic — among equal-cost parents the smaller
/// node id wins — but because ties are broken from the destination side,
/// the chosen path through an equal-cost mesh may differ from the
/// source-side tie-break of [`RoutingTables`]. Distances always agree;
/// use [`RoutingTables`] when byte-exact agreement with the simulator's
/// forwarding is required and the topology is small enough.
///
/// # Example
///
/// ```
/// use sdm_topology::{Topology, NodeKind};
/// let mut t = Topology::new();
/// let a = t.add_node(NodeKind::EdgeRouter, "a");
/// let b = t.add_node(NodeKind::CoreRouter, "b");
/// let c = t.add_node(NodeKind::EdgeRouter, "c");
/// t.add_link(a, b, 1).unwrap();
/// t.add_link(b, c, 1).unwrap();
/// let routes = t.dest_routes();
/// assert_eq!(routes.next_hop(a, c), Some(b));
/// assert_eq!(routes.dist(a, c), Some(2));
/// assert_eq!(routes.cached_destinations(), 1);
/// ```
pub struct DestRoutes<'a> {
    topo: &'a Topology,
    /// dst -> (toward, dist) rows, keyed and iterated in sorted order so
    /// any reporting over the cache is deterministic.
    rows: std::cell::RefCell<std::collections::BTreeMap<u32, std::rc::Rc<DestRow>>>,
}

struct DestRow {
    /// toward[v]: the neighbor v forwards to when routing to the row's
    /// destination; UNREACHABLE when v cannot reach it (or v == dst).
    toward: Vec<u32>,
    dist: Vec<u32>,
}

impl<'a> DestRoutes<'a> {
    /// Creates an empty (nothing computed yet) route view over `topo`.
    pub fn new(topo: &'a Topology) -> Self {
        DestRoutes {
            topo,
            rows: std::cell::RefCell::new(std::collections::BTreeMap::new()),
        }
    }

    fn row(&self, dst: NodeId) -> std::rc::Rc<DestRow> {
        if let Some(r) = self.rows.borrow().get(&dst.0) {
            return std::rc::Rc::clone(r);
        }
        let row = std::rc::Rc::new(self.compute_row(dst));
        self.rows
            .borrow_mut()
            .insert(dst.0, std::rc::Rc::clone(&row));
        row
    }

    /// Dijkstra rooted at `dst` with the same deterministic tie-break as
    /// [`RoutingTables`]: among equal-cost parents the smaller id wins.
    fn compute_row(&self, dst: NodeId) -> DestRow {
        let n = self.topo.node_count();
        let mut dist = vec![UNREACHABLE; n];
        let mut toward = vec![UNREACHABLE; n];
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        dist[dst.index()] = 0;
        heap.push(Reverse((0, dst.0)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for &(v, _link, c) in self.topo.adjacency(NodeId(u)) {
                let nd = d.saturating_add(c);
                let better = nd < dist[v.index()]
                    || (nd == dist[v.index()] && u < toward[v.index()]);
                if better {
                    dist[v.index()] = nd;
                    toward[v.index()] = u;
                    heap.push(Reverse((nd, v.0)));
                }
            }
        }
        DestRow { toward, dist }
    }

    /// The neighbor `src` forwards to when routing towards `dst`, or
    /// `None` if `dst` is unreachable or equals `src`.
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        if src == dst {
            return None;
        }
        match self.row(dst).toward[src.index()] {
            UNREACHABLE => None,
            v => Some(NodeId(v)),
        }
    }

    /// Shortest-path cost from `src` to `dst`, or `None` if unreachable.
    pub fn dist(&self, src: NodeId, dst: NodeId) -> Option<u32> {
        if src == dst {
            return Some(0);
        }
        match self.row(dst).dist[src.index()] {
            UNREACHABLE => None,
            d => Some(d),
        }
    }

    /// How many destination rows have been computed so far.
    pub fn cached_destinations(&self) -> usize {
        self.rows.borrow().len()
    }
}

impl std::fmt::Debug for DestRoutes<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DestRoutes")
            .field("nodes", &self.topo.node_count())
            .field("cached_destinations", &self.cached_destinations())
            .finish()
    }
}

impl Topology {
    /// Computes all-pairs shortest-path routing tables for this topology,
    /// the equivalent of letting OSPF converge on every router.
    pub fn routing_tables(&self) -> RoutingTables {
        RoutingTables::compute(self)
    }

    /// Computes routing tables as if the listed links had failed — what
    /// OSPF converges to after withdrawing their link-state advertisements.
    pub fn routing_tables_excluding(&self, failed: &[crate::LinkId]) -> RoutingTables {
        RoutingTables::compute_excluding(self, failed)
    }

    /// On-demand per-destination routing rows (see [`DestRoutes`]): the
    /// memory-proportional alternative to [`Topology::routing_tables`] for
    /// topologies too large for dense all-pairs tables.
    pub fn dest_routes(&self) -> DestRoutes<'_> {
        DestRoutes::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    fn line(n: usize) -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let ids: Vec<_> = (0..n)
            .map(|i| t.add_node(NodeKind::CoreRouter, format!("n{i}")))
            .collect();
        for w in ids.windows(2) {
            t.add_link(w[0], w[1], 1).unwrap();
        }
        (t, ids)
    }

    #[test]
    fn line_distances() {
        let (t, ids) = line(5);
        let rt = t.routing_tables();
        assert_eq!(rt.dist(ids[0], ids[4]), Some(4));
        assert_eq!(rt.dist(ids[4], ids[0]), Some(4));
        assert_eq!(rt.dist(ids[2], ids[2]), Some(0));
        assert_eq!(rt.next_hop(ids[0], ids[4]), Some(ids[1]));
        assert_eq!(rt.next_hop(ids[2], ids[2]), None);
    }

    #[test]
    fn weighted_shortcut_preferred() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::CoreRouter, "a");
        let b = t.add_node(NodeKind::CoreRouter, "b");
        let c = t.add_node(NodeKind::CoreRouter, "c");
        t.add_link(a, b, 10).unwrap();
        t.add_link(a, c, 1).unwrap();
        t.add_link(c, b, 1).unwrap();
        let rt = t.routing_tables();
        assert_eq!(rt.dist(a, b), Some(2));
        assert_eq!(rt.next_hop(a, b), Some(c));
        assert_eq!(rt.path(a, b).unwrap().nodes(), &[a, c, b]);
    }

    #[test]
    fn unreachable_is_none() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::CoreRouter, "a");
        let b = t.add_node(NodeKind::CoreRouter, "b");
        let rt = t.routing_tables();
        assert_eq!(rt.dist(a, b), None);
        assert_eq!(rt.next_hop(a, b), None);
        assert!(rt.path(a, b).is_none());
    }

    #[test]
    fn equal_cost_tie_breaks_deterministically() {
        // a -- b -- d and a -- c -- d, equal cost: next hop must be b (lower id).
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::CoreRouter, "a");
        let b = t.add_node(NodeKind::CoreRouter, "b");
        let c = t.add_node(NodeKind::CoreRouter, "c");
        let d = t.add_node(NodeKind::CoreRouter, "d");
        t.add_link(a, c, 1).unwrap(); // insert c-link first to stress tie-break
        t.add_link(a, b, 1).unwrap();
        t.add_link(c, d, 1).unwrap();
        t.add_link(b, d, 1).unwrap();
        let rt = t.routing_tables();
        assert_eq!(rt.dist(a, d), Some(2));
        assert_eq!(rt.next_hop(a, d), Some(b));
    }

    #[test]
    fn path_reconstruction_matches_cost() {
        let (t, ids) = line(6);
        let rt = t.routing_tables();
        let p = rt.path(ids[0], ids[5]).unwrap();
        assert_eq!(p.hops(), 5);
        assert_eq!(p.cost(), 5);
        assert_eq!(p.nodes().first(), Some(&ids[0]));
        assert_eq!(p.nodes().last(), Some(&ids[5]));
    }

    #[test]
    fn k_closest_orders_and_truncates() {
        let (t, ids) = line(6);
        let rt = t.routing_tables();
        let cands = vec![ids[5], ids[1], ids[3]];
        assert_eq!(rt.k_closest(ids[0], cands.clone(), 2), vec![ids[1], ids[3]]);
        assert_eq!(rt.k_closest(ids[0], cands.clone(), 10).len(), 3);
        assert_eq!(rt.k_closest(ids[0], cands, 0).len(), 0);
    }

    #[test]
    fn k_closest_skips_unreachable() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::CoreRouter, "a");
        let b = t.add_node(NodeKind::CoreRouter, "b");
        let island = t.add_node(NodeKind::CoreRouter, "island");
        t.add_link(a, b, 1).unwrap();
        let rt = t.routing_tables();
        assert_eq!(rt.k_closest(a, vec![island, b], 5), vec![b]);
    }

    #[test]
    fn link_exclusion_reroutes() {
        // triangle a-b (cost 1), b-c (1), a-c (3): normally a->c via b.
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::CoreRouter, "a");
        let b = t.add_node(NodeKind::CoreRouter, "b");
        let c = t.add_node(NodeKind::CoreRouter, "c");
        let ab = t.add_link(a, b, 1).unwrap();
        t.add_link(b, c, 1).unwrap();
        t.add_link(a, c, 3).unwrap();
        let rt = t.routing_tables();
        assert_eq!(rt.dist(a, c), Some(2));
        // fail a-b: a->c must take the direct expensive link
        let rt2 = t.routing_tables_excluding(&[ab]);
        assert_eq!(rt2.dist(a, c), Some(3));
        assert_eq!(rt2.next_hop(a, c), Some(c));
        assert_eq!(rt2.dist(a, b), Some(4)); // a->c->b
    }

    #[test]
    fn link_exclusion_can_partition() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::CoreRouter, "a");
        let b = t.add_node(NodeKind::CoreRouter, "b");
        let ab = t.add_link(a, b, 1).unwrap();
        let rt = t.routing_tables_excluding(&[ab]);
        assert_eq!(rt.dist(a, b), None);
        assert!(rt.path(a, b).is_none());
    }

    #[test]
    fn dest_routes_agree_with_all_pairs_distances() {
        // Same deterministic mesh as `matches_floyd_warshall`.
        let mut t = Topology::new();
        let ids: Vec<_> = (0..8)
            .map(|i| t.add_node(NodeKind::CoreRouter, format!("n{i}")))
            .collect();
        let mut s: u64 = 42;
        let mut rand = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as u32
        };
        for i in 0..8 {
            for j in (i + 1)..8 {
                if rand() % 3 != 0 {
                    t.add_link(ids[i], ids[j], 1 + rand() % 9).unwrap();
                }
            }
        }
        let rt = t.routing_tables();
        let dr = t.dest_routes();
        for &src in &ids {
            for &dst in &ids {
                assert_eq!(dr.dist(src, dst), rt.dist(src, dst), "{src:?}->{dst:?}");
                // Following dest-route next hops must reach dst along a
                // path whose hop costs sum to the shortest distance.
                if src != dst && dr.dist(src, dst).is_some() {
                    let mut at = src;
                    let mut hops = 0;
                    while at != dst {
                        let nh = dr.next_hop(at, dst).expect("reachable");
                        // each hop strictly decreases remaining distance
                        assert!(dr.dist(nh, dst).unwrap() < dr.dist(at, dst).unwrap());
                        at = nh;
                        hops += 1;
                        assert!(hops <= ids.len(), "forwarding loop");
                    }
                }
            }
        }
        assert_eq!(dr.cached_destinations(), ids.len());
    }

    #[test]
    fn dest_routes_handle_self_and_unreachable() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::CoreRouter, "a");
        let b = t.add_node(NodeKind::CoreRouter, "b");
        let island = t.add_node(NodeKind::CoreRouter, "island");
        t.add_link(a, b, 1).unwrap();
        let dr = t.dest_routes();
        assert_eq!(dr.next_hop(a, a), None);
        assert_eq!(dr.dist(a, a), Some(0));
        assert_eq!(dr.next_hop(a, island), None);
        assert_eq!(dr.dist(a, island), None);
        assert_eq!(dr.next_hop(a, b), Some(b));
    }

    /// Cross-check Dijkstra against Floyd–Warshall on a fixed mesh.
    #[test]
    fn matches_floyd_warshall() {
        let mut t = Topology::new();
        let ids: Vec<_> = (0..8)
            .map(|i| t.add_node(NodeKind::CoreRouter, format!("n{i}")))
            .collect();
        // Deterministic pseudo-random mesh.
        let mut s: u64 = 42;
        let mut rand = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as u32
        };
        for i in 0..8 {
            for j in (i + 1)..8 {
                if rand() % 3 != 0 {
                    t.add_link(ids[i], ids[j], 1 + rand() % 9).unwrap();
                }
            }
        }
        let rt = t.routing_tables();
        let n = ids.len();
        let inf = u64::MAX / 4;
        let mut fw = vec![inf; n * n];
        for i in 0..n {
            fw[i * n + i] = 0;
        }
        for li in 0..t.link_count() {
            let (a, b, c) = t.link(crate::LinkId(li as u32));
            fw[a.index() * n + b.index()] = fw[a.index() * n + b.index()].min(c as u64);
            fw[b.index() * n + a.index()] = fw[b.index() * n + a.index()].min(c as u64);
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let via = fw[i * n + k] + fw[k * n + j];
                    if via < fw[i * n + j] {
                        fw[i * n + j] = via;
                    }
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                let expect = if fw[i * n + j] >= inf {
                    None
                } else {
                    Some(fw[i * n + j] as u32)
                };
                assert_eq!(rt.dist(ids[i], ids[j]), expect, "pair {i}->{j}");
            }
        }
    }
}
