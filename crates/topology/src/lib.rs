//! Network topology substrate for the software-defined middlebox (SDM)
//! policy-enforcement reproduction.
//!
//! This crate models the *traditional, non-SDN network* underneath the
//! paper's architecture: a graph of gateways, core routers and edge routers
//! whose forwarding is determined purely by shortest-path routing (an
//! OSPF-style link-state computation), oblivious to any middlebox policy.
//!
//! It provides:
//!
//! * [`Topology`] — an undirected weighted graph with typed nodes
//!   ([`NodeKind`]) built through a validating builder API.
//! * [`RoutingTables`] — all-pairs shortest-path distances and deterministic
//!   next-hop tables computed with Dijkstra's algorithm, exactly the
//!   information an OSPF router derives from link-state flooding.
//! * Topology generators reproducing the paper's two evaluation networks:
//!   [`campus::campus`] (2 gateways, 16 core routers, 10 edge routers) and
//!   [`waxman::waxman`] (25 core routers connected by the Waxman model, 400
//!   edge routers).
//!
//! # Example
//!
//! ```
//! use sdm_topology::{Topology, NodeKind};
//!
//! let mut t = Topology::new();
//! let a = t.add_node(NodeKind::EdgeRouter, "a");
//! let b = t.add_node(NodeKind::CoreRouter, "b");
//! let c = t.add_node(NodeKind::EdgeRouter, "c");
//! t.add_link(a, b, 1).unwrap();
//! t.add_link(b, c, 1).unwrap();
//! let routes = t.routing_tables();
//! assert_eq!(routes.dist(a, c), Some(2));
//! assert_eq!(routes.next_hop(a, c), Some(b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod plan;
mod routing;

pub mod campus;
pub mod hierarchical;
pub mod two_tier;
pub mod waxman;

pub use graph::{LinkId, NodeId, NodeKind, Topology, TopologyError};
pub use plan::NetworkPlan;
pub use routing::{DestRoutes, Path, RoutingTables};
