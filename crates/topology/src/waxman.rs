//! The Waxman random topology used in the paper's evaluation (§IV.A):
//! 25 core routers placed uniformly at random in a 100-by-100 region and
//! interconnected with probability exponentially decreasing in distance
//! (Waxman's model, JSAC 1988), each with 4 core-to-core links; 400 edge
//! routers spread equally across cores.

use sdm_util::json::{FromJson, Json, JsonError, ToJson};
use sdm_util::rng::StdRng;

use crate::graph::{NodeKind, Topology};
use crate::plan::NetworkPlan;

/// Parameters of the Waxman generator.
///
/// Defaults reproduce the paper's setting: 25 cores, 400 edges, region
/// 100×100, 4 core links per core.
#[derive(Debug, Clone, PartialEq)]
pub struct WaxmanConfig {
    /// Number of core routers.
    pub cores: usize,
    /// Number of edge routers, spread equally across cores.
    pub edges: usize,
    /// Side length of the square placement region.
    pub region: f64,
    /// Target number of core-to-core links per core router.
    pub links_per_core: usize,
    /// Waxman `alpha` parameter: scales the reference distance `alpha * L`
    /// where `L` is the maximal possible distance.
    pub alpha: f64,
    /// Waxman `beta` parameter: base connection probability.
    pub beta: f64,
}

impl Default for WaxmanConfig {
    fn default() -> Self {
        WaxmanConfig {
            cores: 25,
            edges: 400,
            region: 100.0,
            links_per_core: 4,
            alpha: 0.4,
            beta: 0.9,
        }
    }
}

impl ToJson for WaxmanConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cores", Json::from(self.cores)),
            ("edges", Json::from(self.edges)),
            ("region", Json::Num(self.region)),
            ("links_per_core", Json::from(self.links_per_core)),
            ("alpha", Json::Num(self.alpha)),
            ("beta", Json::Num(self.beta)),
        ])
    }
}

impl FromJson for WaxmanConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let count = |key: &str| {
            v.req(key)?
                .as_usize()
                .ok_or_else(|| JsonError::msg(format!("{key} must be a non-negative integer")))
        };
        let num = |key: &str| {
            v.req(key)?
                .as_f64()
                .ok_or_else(|| JsonError::msg(format!("{key} must be a number")))
        };
        Ok(WaxmanConfig {
            cores: count("cores")?,
            edges: count("edges")?,
            region: num("region")?,
            links_per_core: count("links_per_core")?,
            alpha: num("alpha")?,
            beta: num("beta")?,
        })
    }
}

/// Generates a Waxman-model topology with the paper's default parameters.
///
/// Equivalent to `waxman_with(&WaxmanConfig::default(), seed)`.
///
/// # Example
///
/// ```
/// let plan = sdm_topology::waxman::waxman(1);
/// assert_eq!(plan.cores().len(), 25);
/// assert_eq!(plan.edges().len(), 400);
/// assert!(plan.topology().is_connected());
/// ```
pub fn waxman(seed: u64) -> NetworkPlan {
    waxman_with(&WaxmanConfig::default(), seed)
}

/// Generates a Waxman-model topology with explicit parameters.
///
/// Core routers receive random coordinates in the region; each core draws
/// links to `links_per_core` peers sampled with probability proportional to
/// `beta * exp(-d / (alpha * L))`. If the core graph ends up disconnected,
/// the nearest pair of routers across components is linked (this preserves
/// the distance-sensitive character of the model). Edge routers are then
/// attached round-robin so that every core serves `edges / cores` of them
/// (the paper: "each of which is connected to an equal number of edge
/// routers").
///
/// # Panics
///
/// Panics if `cores == 0` or `edges % cores != 0`.
pub fn waxman_with(config: &WaxmanConfig, seed: u64) -> NetworkPlan {
    assert!(config.cores > 0, "need at least one core router");
    assert!(
        config.edges.is_multiple_of(config.cores),
        "edge routers must divide equally across cores (got {} edges, {} cores)",
        config.edges,
        config.cores
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Topology::new();

    let cores: Vec<_> = (0..config.cores)
        .map(|i| t.add_node(NodeKind::CoreRouter, format!("core{i}")))
        .collect();
    let coords: Vec<(f64, f64)> = (0..config.cores)
        .map(|_| {
            (
                rng.gen_range(0.0..config.region),
                rng.gen_range(0.0..config.region),
            )
        })
        .collect();
    let l_max = config.region * std::f64::consts::SQRT_2;

    let dist = |i: usize, j: usize| -> f64 {
        let (xi, yi) = coords[i];
        let (xj, yj) = coords[j];
        ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt()
    };
    let waxman_p = |i: usize, j: usize| -> f64 {
        config.beta * (-dist(i, j) / (config.alpha * l_max)).exp()
    };

    // Each core picks `links_per_core` neighbors, sampled without
    // replacement with Waxman weights.
    for i in 0..config.cores {
        let mut candidates: Vec<usize> = (0..config.cores)
            .filter(|&j| j != i && !t.has_link(cores[i], cores[j]))
            .collect();
        let mut need = config.links_per_core.saturating_sub(t.degree(cores[i]));
        while need > 0 && !candidates.is_empty() {
            let total: f64 = candidates.iter().map(|&j| waxman_p(i, j)).sum();
            let mut pick = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
            let mut chosen = candidates.len() - 1;
            for (ci, &j) in candidates.iter().enumerate() {
                pick -= waxman_p(i, j);
                if pick <= 0.0 {
                    chosen = ci;
                    break;
                }
            }
            let j = candidates.swap_remove(chosen);
            t.add_link(cores[i], cores[j], 1)
                .expect("candidate list excludes existing links");
            need -= 1;
        }
    }

    // Stitch components together with nearest cross-component pairs, if any.
    loop {
        let comp = components(&t, &cores);
        if comp.iter().all(|&c| c == comp[0]) {
            break;
        }
        let mut best: Option<(f64, usize, usize)> = None;
        for i in 0..config.cores {
            for j in (i + 1)..config.cores {
                if comp[i] != comp[j] {
                    let d = dist(i, j);
                    if best.is_none_or(|(bd, _, _)| d < bd) {
                        best = Some((d, i, j));
                    }
                }
            }
        }
        let (_, i, j) = best.expect("disconnected graph has a cross-component pair");
        t.add_link(cores[i], cores[j], 1)
            .expect("cross-component pair cannot already be linked");
    }

    // Attach edge routers: exactly edges/cores per core.
    let per_core = config.edges / config.cores;
    let mut edges = Vec::with_capacity(config.edges);
    for (ci, &c) in cores.iter().enumerate() {
        for k in 0..per_core {
            let e = t.add_node(NodeKind::EdgeRouter, format!("edge{}_{}", ci, k));
            t.add_link(e, c, 1).expect("fresh edge uplink");
            edges.push(e);
        }
    }

    debug_assert!(t.is_connected());
    NetworkPlan::new(t, Vec::new(), cores, edges)
}

/// Component label per core (indices aligned with `cores`).
fn components(t: &Topology, cores: &[crate::NodeId]) -> Vec<usize> {
    let mut label = vec![usize::MAX; cores.len()];
    let index_of = |n: crate::NodeId| cores.iter().position(|&c| c == n);
    let mut next = 0;
    for start in 0..cores.len() {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = next;
        let mut stack = vec![cores[start]];
        while let Some(n) = stack.pop() {
            for (m, _) in t.neighbors(n) {
                if let Some(mi) = index_of(m) {
                    if label[mi] == usize::MAX {
                        label[mi] = next;
                        stack.push(cores[mi]);
                    }
                }
            }
        }
        next += 1;
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_json_round_trip() {
        let cfg = WaxmanConfig::default();
        let text = cfg.to_json().to_string();
        let back = WaxmanConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn default_matches_paper_counts() {
        let plan = waxman(7);
        assert_eq!(plan.cores().len(), 25);
        assert_eq!(plan.edges().len(), 400);
        assert!(plan.gateways().is_empty());
    }

    #[test]
    fn edges_spread_equally() {
        let plan = waxman(2);
        // each core serves exactly 400/25 = 16 edge routers
        for &c in plan.cores() {
            let edge_neighbors = plan
                .topology()
                .neighbors(c)
                .filter(|&(n, _)| plan.topology().kind(n) == crate::NodeKind::EdgeRouter)
                .count();
            assert_eq!(edge_neighbors, 16);
        }
        for &e in plan.edges() {
            assert_eq!(plan.topology().degree(e), 1);
        }
    }

    #[test]
    fn cores_have_at_least_target_degree() {
        let plan = waxman(3);
        for &c in plan.cores() {
            let core_links = plan
                .topology()
                .neighbors(c)
                .filter(|&(n, _)| plan.topology().kind(n) == crate::NodeKind::CoreRouter)
                .count();
            assert!(core_links >= 4, "core {c} has only {core_links} core links");
        }
    }

    #[test]
    fn connected_and_deterministic() {
        let a = waxman(11);
        assert!(a.topology().is_connected());
        let b = waxman(11);
        assert_eq!(a.topology().link_count(), b.topology().link_count());
    }

    #[test]
    fn small_config_is_valid() {
        let cfg = WaxmanConfig {
            cores: 5,
            edges: 10,
            ..WaxmanConfig::default()
        };
        let plan = waxman_with(&cfg, 0);
        assert_eq!(plan.cores().len(), 5);
        assert_eq!(plan.edges().len(), 10);
        assert!(plan.topology().is_connected());
    }

    #[test]
    #[should_panic(expected = "divide equally")]
    fn rejects_uneven_edges() {
        let cfg = WaxmanConfig {
            cores: 3,
            edges: 10,
            ..WaxmanConfig::default()
        };
        let _ = waxman_with(&cfg, 0);
    }
}
