//! The real-world campus topology used in the paper's evaluation (§IV.A):
//! two Internet gateways, 16 core routers each connected to both gateways,
//! and 10 edge routers hosting the stub networks.
//!
//! The paper gives the node counts and the gateway wiring but not the exact
//! core-to-core and core-to-edge cabling; we complete the graph
//! deterministically from a seed: cores form a ring (a common campus
//! redundancy pattern) plus a few seeded chords, and every edge router is
//! dual-homed to two distinct cores.

use sdm_util::rng::{SliceRandom, StdRng};

use crate::graph::{NodeKind, Topology};
use crate::plan::NetworkPlan;

/// Number of Internet gateways in the campus topology.
pub const GATEWAYS: usize = 2;
/// Number of core routers in the campus topology.
pub const CORES: usize = 16;
/// Number of edge routers (stub networks) in the campus topology.
pub const EDGES: usize = 10;

/// Generates the campus topology of §IV.A.
///
/// All link costs are 1 (hop-count routing). The result is deterministic in
/// `seed` and always connected.
///
/// # Example
///
/// ```
/// let plan = sdm_topology::campus::campus(1);
/// let t = plan.topology();
/// // every core router connects to both gateways
/// for &c in plan.cores() {
///     assert!(t.has_link(c, plan.gateways()[0]));
///     assert!(t.has_link(c, plan.gateways()[1]));
/// }
/// ```
pub fn campus(seed: u64) -> NetworkPlan {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Topology::new();

    let gateways: Vec<_> = (0..GATEWAYS)
        .map(|i| t.add_node(NodeKind::Gateway, format!("gw{i}")))
        .collect();
    let cores: Vec<_> = (0..CORES)
        .map(|i| t.add_node(NodeKind::CoreRouter, format!("core{i}")))
        .collect();
    let edges: Vec<_> = (0..EDGES)
        .map(|i| t.add_node(NodeKind::EdgeRouter, format!("edge{i}")))
        .collect();

    // Each core router connects to both gateways (stated in the paper).
    for &c in &cores {
        for &g in &gateways {
            t.add_link(c, g, 1).expect("fresh links cannot collide");
        }
    }

    // Core ring for direct core-to-core connectivity.
    for i in 0..CORES {
        let a = cores[i];
        let b = cores[(i + 1) % CORES];
        t.add_link(a, b, 1).expect("ring links are unique");
    }

    // A few seeded chords across the ring for realistic path diversity.
    let chords = CORES / 4;
    let mut added = 0;
    while added < chords {
        let a = cores[rng.gen_range(0..CORES)];
        let b = cores[rng.gen_range(0..CORES)];
        if a != b && !t.has_link(a, b) {
            t.add_link(a, b, 1).expect("checked not duplicate");
            added += 1;
        }
    }

    // Every edge router is dual-homed to two distinct cores, spread evenly.
    let mut order: Vec<usize> = (0..CORES).collect();
    order.shuffle(&mut rng);
    for (i, &e) in edges.iter().enumerate() {
        let c1 = cores[order[(2 * i) % CORES]];
        let c2 = cores[order[(2 * i + 1) % CORES]];
        t.add_link(e, c1, 1).expect("edge uplinks are unique");
        t.add_link(e, c2, 1).expect("edge uplinks are unique");
    }

    debug_assert!(t.is_connected());
    NetworkPlan::new(t, gateways, cores, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    #[test]
    fn node_counts_match_paper() {
        let plan = campus(0);
        assert_eq!(plan.gateways().len(), GATEWAYS);
        assert_eq!(plan.cores().len(), CORES);
        assert_eq!(plan.edges().len(), EDGES);
        assert_eq!(plan.topology().node_count(), GATEWAYS + CORES + EDGES);
    }

    #[test]
    fn cores_connect_to_both_gateways() {
        let plan = campus(3);
        for &c in plan.cores() {
            for &g in plan.gateways() {
                assert!(plan.topology().has_link(c, g));
            }
        }
    }

    #[test]
    fn edges_are_dual_homed_to_cores() {
        let plan = campus(5);
        for &e in plan.edges() {
            assert_eq!(plan.topology().degree(e), 2);
            for (n, _) in plan.topology().neighbors(e) {
                assert_eq!(plan.topology().kind(n), NodeKind::CoreRouter);
            }
        }
    }

    #[test]
    fn connected_and_deterministic() {
        let a = campus(9);
        let b = campus(9);
        assert!(a.topology().is_connected());
        assert_eq!(a.topology().link_count(), b.topology().link_count());
        for la in 0..a.topology().link_count() {
            let id = crate::LinkId(la as u32);
            assert_eq!(a.topology().link(id), b.topology().link(id));
        }
    }

    #[test]
    fn different_seeds_change_wiring() {
        let a = campus(1);
        let b = campus(2);
        // Same counts, but at least one chord or edge uplink should differ.
        let same = (0..a.topology().link_count()).all(|i| {
            a.topology().link(crate::LinkId(i as u32)) == b.topology().link(crate::LinkId(i as u32))
        });
        assert!(!same);
    }

    #[test]
    fn every_stub_reaches_every_gateway() {
        let plan = campus(11);
        let rt = plan.topology().routing_tables();
        for &e in plan.edges() {
            for &g in plan.gateways() {
                assert!(rt.dist(e, g).is_some());
                // edge -> core -> gateway is 2 hops
                assert_eq!(rt.dist(e, g), Some(2));
            }
        }
    }
}
