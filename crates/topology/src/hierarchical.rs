//! A hierarchical two-tier × Waxman composition for policy-state scaling
//! experiments (PR 9): a regular two-tier distribution backbone (pairs of
//! distribution routers fully meshed to each other and to the gateways,
//! exactly as in [`crate::two_tier`]) whose "edge" slots are replaced by
//! *pods* — small Waxman-style random core meshes, each dual-homed to its
//! distribution pair, fanning out to many edge routers.
//!
//! The composition scales to tens of thousands of nodes (see
//! [`HierarchicalConfig::large`]) while keeping the backbone diameter
//! small, which is exactly the regime where per-device flow-table size —
//! not topology — dominates enforcement cost. The generator draws from its
//! own RNG stream ([`sdm_util::rng::StdRng`] seeded per call) and is fully
//! deterministic for a given `(config, seed)`; it shares no state with
//! [`crate::waxman`], so the paper-evaluation goldens are unaffected.

use sdm_util::rng::StdRng;

use crate::graph::{NodeKind, Topology};
use crate::plan::NetworkPlan;

/// Parameters of the hierarchical generator.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchicalConfig {
    /// Number of distribution *pairs* in the backbone (2 pairs = 4
    /// distribution routers).
    pub pairs: usize,
    /// Pods hanging off each distribution pair.
    pub pods_per_pair: usize,
    /// Waxman-meshed core routers inside each pod.
    pub routers_per_pod: usize,
    /// Edge routers attached (round-robin) to each pod router.
    pub edges_per_router: usize,
    /// Internet gateways, connected to every distribution router.
    pub gateways: usize,
    /// Waxman `alpha` for the intra-pod mesh (reference distance scale).
    pub alpha: f64,
    /// Waxman `beta` for the intra-pod mesh (base link probability).
    pub beta: f64,
}

impl Default for HierarchicalConfig {
    fn default() -> Self {
        HierarchicalConfig {
            pairs: 3,
            pods_per_pair: 6,
            routers_per_pod: 8,
            edges_per_router: 12,
            gateways: 2,
            alpha: 0.4,
            beta: 0.9,
        }
    }
}

impl HierarchicalConfig {
    /// A preset that builds a network in the tens of thousands of nodes
    /// (≈21k with these parameters) — the scale used by the `table_scale`
    /// experiments.
    pub fn large() -> Self {
        HierarchicalConfig {
            pairs: 4,
            pods_per_pair: 16,
            routers_per_pod: 10,
            edges_per_router: 32,
            gateways: 2,
            alpha: 0.4,
            beta: 0.9,
        }
    }

    /// Total node count the configuration will produce.
    pub fn node_count(&self) -> usize {
        self.gateways
            + 2 * self.pairs
            + self.pairs
                * self.pods_per_pair
                * (self.routers_per_pod + self.routers_per_pod * self.edges_per_router)
    }
}

/// Generates a hierarchical two-tier × Waxman network.
///
/// Backbone: `pairs` distribution pairs built exactly like
/// [`crate::two_tier::two_tier`] (intra-pair link, polarity mesh across
/// pairs, uplinks to every gateway). Each pair then anchors
/// `pods_per_pair` pods: `routers_per_pod` core routers placed uniformly
/// at random in a 100×100 region and meshed with Waxman link
/// probabilities (components stitched by nearest pairs, as in
/// [`crate::waxman::waxman_with`]), with pod routers 0 and 1 each
/// dual-homed to both routers of the owning distribution pair. Every pod
/// router finally serves `edges_per_router` edge routers.
///
/// Deterministic for a given `(config, seed)`.
///
/// # Panics
///
/// Panics if `pairs`, `pods_per_pair` or `routers_per_pod` is zero, or if
/// `routers_per_pod < 2` (the dual-homing uplink needs two pod routers).
///
/// # Example
///
/// ```
/// use sdm_topology::hierarchical::{hierarchical, HierarchicalConfig};
/// let cfg = HierarchicalConfig::default();
/// let plan = hierarchical(&cfg, 1);
/// assert_eq!(plan.topology().node_count(), cfg.node_count());
/// assert!(plan.topology().is_connected());
/// ```
pub fn hierarchical(config: &HierarchicalConfig, seed: u64) -> NetworkPlan {
    assert!(config.pairs > 0, "need at least one distribution pair");
    assert!(config.pods_per_pair > 0, "need at least one pod per pair");
    assert!(
        config.routers_per_pod >= 2,
        "need at least two routers per pod for dual-homed uplinks"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Topology::new();

    // --- backbone: identical construction to `two_tier` -----------------
    let gateways: Vec<_> = (0..config.gateways)
        .map(|i| t.add_node(NodeKind::Gateway, format!("gw{i}")))
        .collect();
    let mut dist = Vec::with_capacity(config.pairs * 2);
    for p in 0..config.pairs {
        let a = t.add_node(NodeKind::CoreRouter, format!("dist{p}a"));
        let b = t.add_node(NodeKind::CoreRouter, format!("dist{p}b"));
        t.add_link(a, b, 1).expect("pair link");
        dist.push(a);
        dist.push(b);
    }
    for i in 0..dist.len() {
        for j in (i + 1)..dist.len() {
            let (pi, pj) = (i / 2, j / 2);
            if pi == pj {
                continue;
            }
            let same_polarity = (i % 2) == (j % 2);
            let adjacent_cross = (i % 2 == 0) && (j % 2 == 1) && pj == pi + 1;
            if same_polarity || adjacent_cross {
                t.add_link(dist[i], dist[j], 1).expect("mesh link");
            }
        }
    }
    for &d in &dist {
        for &g in &gateways {
            t.add_link(d, g, 1).expect("gateway uplink");
        }
    }

    // --- pods: Waxman mesh per pod, dual-homed to the owning pair --------
    let region = 100.0;
    let l_max = region * std::f64::consts::SQRT_2;
    let mut cores = dist.clone();
    let mut edges = Vec::new();
    for p in 0..config.pairs {
        for q in 0..config.pods_per_pair {
            let routers: Vec<_> = (0..config.routers_per_pod)
                .map(|r| t.add_node(NodeKind::CoreRouter, format!("pod{p}_{q}r{r}")))
                .collect();
            let coords: Vec<(f64, f64)> = (0..config.routers_per_pod)
                .map(|_| (rng.gen_range(0.0..region), rng.gen_range(0.0..region)))
                .collect();
            let dist2 = |i: usize, j: usize| -> f64 {
                let (xi, yi) = coords[i];
                let (xj, yj) = coords[j];
                ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt()
            };
            let waxman_p =
                |i: usize, j: usize| -> f64 { config.beta * (-dist2(i, j) / (config.alpha * l_max)).exp() };

            // Each pod router draws up to 2 Waxman-weighted mesh links.
            for i in 0..routers.len() {
                let mut candidates: Vec<usize> = (0..routers.len())
                    .filter(|&j| j != i && !t.has_link(routers[i], routers[j]))
                    .collect();
                let local_degree = |t: &Topology, n| {
                    routers
                        .iter()
                        .filter(|&&m| m != n && t.has_link(n, m))
                        .count()
                };
                let mut need = 2usize.saturating_sub(local_degree(&t, routers[i]));
                while need > 0 && !candidates.is_empty() {
                    let total: f64 = candidates.iter().map(|&j| waxman_p(i, j)).sum();
                    let mut pick = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
                    let mut chosen = candidates.len() - 1;
                    for (ci, &j) in candidates.iter().enumerate() {
                        pick -= waxman_p(i, j);
                        if pick <= 0.0 {
                            chosen = ci;
                            break;
                        }
                    }
                    let j = candidates.swap_remove(chosen);
                    t.add_link(routers[i], routers[j], 1)
                        .expect("candidate list excludes existing links");
                    need -= 1;
                }
            }

            // Stitch mesh components with nearest cross-component pairs.
            loop {
                let comp = pod_components(&t, &routers);
                if comp.iter().all(|&c| c == comp[0]) {
                    break;
                }
                let mut best: Option<(f64, usize, usize)> = None;
                for i in 0..routers.len() {
                    for j in (i + 1)..routers.len() {
                        if comp[i] != comp[j] {
                            let d = dist2(i, j);
                            if best.is_none_or(|(bd, _, _)| d < bd) {
                                best = Some((d, i, j));
                            }
                        }
                    }
                }
                let (_, i, j) = best.expect("disconnected mesh has a cross-component pair");
                t.add_link(routers[i], routers[j], 1)
                    .expect("cross-component pair cannot already be linked");
            }

            // Dual-homed uplinks: border routers 0 and 1 each reach both
            // routers of the owning distribution pair.
            for &border in &routers[..2] {
                t.add_link(border, dist[2 * p], 1).expect("uplink a");
                t.add_link(border, dist[2 * p + 1], 1).expect("uplink b");
            }

            // Edge fan-out.
            for (ri, &r) in routers.iter().enumerate() {
                for k in 0..config.edges_per_router {
                    let e = t.add_node(NodeKind::EdgeRouter, format!("pod{p}_{q}e{ri}_{k}"));
                    t.add_link(e, r, 1).expect("fresh edge uplink");
                    edges.push(e);
                }
            }
            cores.extend_from_slice(&routers);
        }
    }

    debug_assert!(t.is_connected());
    NetworkPlan::new(t, gateways, cores, edges)
}

/// Component label per pod router (indices aligned with `routers`),
/// considering only intra-pod links.
fn pod_components(t: &Topology, routers: &[crate::NodeId]) -> Vec<usize> {
    let mut label = vec![usize::MAX; routers.len()];
    let index_of = |n: crate::NodeId| routers.iter().position(|&c| c == n);
    let mut next = 0;
    for start in 0..routers.len() {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = next;
        let mut stack = vec![routers[start]];
        while let Some(n) = stack.pop() {
            for (m, _) in t.neighbors(n) {
                if let Some(mi) = index_of(m) {
                    if label[mi] == usize::MAX {
                        label[mi] = next;
                        stack.push(routers[mi]);
                    }
                }
            }
        }
        next += 1;
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shape_and_counts() {
        let cfg = HierarchicalConfig::default();
        let plan = hierarchical(&cfg, 1);
        assert_eq!(plan.gateways().len(), 2);
        // distribution routers + pod routers
        assert_eq!(
            plan.cores().len(),
            2 * cfg.pairs + cfg.pairs * cfg.pods_per_pair * cfg.routers_per_pod
        );
        assert_eq!(
            plan.edges().len(),
            cfg.pairs * cfg.pods_per_pair * cfg.routers_per_pod * cfg.edges_per_router
        );
        assert_eq!(plan.topology().node_count(), cfg.node_count());
        assert!(plan.topology().is_connected());
        // every edge router has exactly one uplink
        for &e in plan.edges() {
            assert_eq!(plan.topology().degree(e), 1);
        }
    }

    #[test]
    fn large_preset_reaches_tens_of_thousands_of_nodes() {
        let cfg = HierarchicalConfig::large();
        assert!(cfg.node_count() >= 20_000, "large preset must scale");
        let plan = hierarchical(&cfg, 7);
        assert_eq!(plan.topology().node_count(), cfg.node_count());
        assert!(plan.topology().is_connected());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = HierarchicalConfig::default();
        let a = hierarchical(&cfg, 42);
        let b = hierarchical(&cfg, 42);
        assert_eq!(a.topology().node_count(), b.topology().node_count());
        assert_eq!(a.topology().link_count(), b.topology().link_count());
        for l in 0..a.topology().link_count() {
            let l = crate::LinkId::from_index(l);
            assert_eq!(a.topology().link(l), b.topology().link(l));
        }
    }

    #[test]
    fn different_seed_changes_pod_meshes() {
        let cfg = HierarchicalConfig::default();
        let a = hierarchical(&cfg, 1);
        let b = hierarchical(&cfg, 2);
        // node counts agree (structure is fixed) …
        assert_eq!(a.topology().node_count(), b.topology().node_count());
        // … but some intra-pod link differs
        let differs = (0..a.topology().link_count().min(b.topology().link_count()))
            .map(crate::LinkId::from_index)
            .any(|l| a.topology().link(l) != b.topology().link(l))
            || a.topology().link_count() != b.topology().link_count();
        assert!(differs, "seeds should perturb the Waxman meshes");
    }

    #[test]
    fn pods_survive_single_border_uplink_loss() {
        // With dual-homed borders, removing one uplink keeps the pod
        // reachable from the backbone.
        let cfg = HierarchicalConfig {
            pairs: 1,
            pods_per_pair: 2,
            routers_per_pod: 4,
            edges_per_router: 1,
            ..HierarchicalConfig::default()
        };
        let plan = hierarchical(&cfg, 3);
        let t = plan.topology();
        // find one border uplink: a link between a pod router and a
        // distribution router
        let dist_a = plan.cores()[0];
        let uplink = (0..t.link_count())
            .map(crate::LinkId::from_index)
            .find(|&l| {
                let (a, b, _) = t.link(l);
                (a == dist_a || b == dist_a)
                    && t.kind(a) == NodeKind::CoreRouter
                    && t.kind(b) == NodeKind::CoreRouter
                    && a != plan.cores()[1]
                    && b != plan.cores()[1]
            })
            .expect("border uplink exists");
        let rt = t.routing_tables_excluding(&[uplink]);
        for &e in plan.edges() {
            assert!(
                rt.dist(plan.gateways()[0], e).is_some(),
                "edge unreachable after single uplink loss"
            );
        }
    }

    #[test]
    #[should_panic(expected = "two routers per pod")]
    fn rejects_single_router_pods() {
        let cfg = HierarchicalConfig {
            routers_per_pod: 1,
            ..HierarchicalConfig::default()
        };
        let _ = hierarchical(&cfg, 0);
    }
}
