//! A generated network plan: the graph plus the role assignment the
//! generators produced (gateways, core routers, edge routers).

use crate::graph::{NodeId, NodeKind, Topology};

/// A topology together with its node-role inventory, as produced by the
/// [`crate::campus`] and [`crate::waxman`] generators.
///
/// Edge routers are the attachment points for stub networks and policy
/// proxies; core routers are the attachment points for middleboxes.
///
/// # Example
///
/// ```
/// let plan = sdm_topology::campus::campus(7);
/// assert_eq!(plan.gateways().len(), 2);
/// assert_eq!(plan.cores().len(), 16);
/// assert_eq!(plan.edges().len(), 10);
/// assert!(plan.topology().is_connected());
/// ```
#[derive(Debug, Clone)]
pub struct NetworkPlan {
    topology: Topology,
    gateways: Vec<NodeId>,
    cores: Vec<NodeId>,
    edges: Vec<NodeId>,
}

impl NetworkPlan {
    /// Assembles a plan from a topology and explicit role lists.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a listed node's [`NodeKind`] does not match
    /// its role list.
    pub fn new(
        topology: Topology,
        gateways: Vec<NodeId>,
        cores: Vec<NodeId>,
        edges: Vec<NodeId>,
    ) -> Self {
        debug_assert!(gateways.iter().all(|&n| topology.kind(n) == NodeKind::Gateway));
        debug_assert!(cores.iter().all(|&n| topology.kind(n) == NodeKind::CoreRouter));
        debug_assert!(edges.iter().all(|&n| topology.kind(n) == NodeKind::EdgeRouter));
        NetworkPlan {
            topology,
            gateways,
            cores,
            edges,
        }
    }

    /// The underlying graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Internet gateways.
    pub fn gateways(&self) -> &[NodeId] {
        &self.gateways
    }

    /// Core routers (middlebox attachment points).
    pub fn cores(&self) -> &[NodeId] {
        &self.cores
    }

    /// Edge routers (stub network / policy proxy attachment points).
    pub fn edges(&self) -> &[NodeId] {
        &self.edges
    }

    /// Number of stub networks, one per edge router.
    pub fn stub_count(&self) -> usize {
        self.edges.len()
    }

    /// Consumes the plan, returning the underlying topology.
    pub fn into_topology(self) -> Topology {
        self.topology
    }
}
