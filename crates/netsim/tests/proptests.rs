//! Property tests for the simulator: conservation of packets, consistency
//! of the statistics counters, and delivery through arbitrary device
//! chains on randomized campus-style worlds.

use sdm_netsim::{
    Attachment, Device, DeviceCtx, FiveTuple, Ipv4Addr, Packet, Protocol, Simulator, StubId,
};
use sdm_util::prop::{check, Config};
use sdm_util::rng::StdRng;
use sdm_util::{prop_assert, prop_assert_eq};

/// A device that tunnels every data packet to the next address in a fixed
/// ring of devices, the last forwarding to the real destination.
struct ChainHop {
    next: Option<Ipv4Addr>,
}

impl Device for ChainHop {
    fn receive(&mut self, ctx: &mut DeviceCtx<'_>, pkt: sdm_netsim::PacketId) {
        ctx.pkt_mut(pkt).decapsulate();
        if let Some(next) = self.next {
            let here = ctx.addr();
            ctx.pkt_mut(pkt).encapsulate(here, next);
        }
        ctx.forward(pkt);
    }
}

fn flow(sim: &Simulator, from: u32, to: u32, sp: u16) -> FiveTuple {
    FiveTuple {
        src: sim.addresses().host(StubId(from), 0),
        dst: sim.addresses().host(StubId(to), 0),
        src_port: sp,
        dst_port: 80,
        proto: Protocol::Tcp,
    }
}

/// Every injected packet is delivered exactly once, whatever chain of
/// devices it is pushed through, and device hop counts match.
#[test]
fn conservation_through_random_chains() {
    check(
        "conservation_through_random_chains",
        &Config::with_cases(64),
        |rng: &mut StdRng| {
            let n_flows = rng.gen_range(1usize..20);
            let flows: Vec<(u32, u32, u16, u64)> = (0..n_flows)
                .map(|_| {
                    (
                        rng.gen_range(0u32..10),
                        rng.gen_range(0u32..10),
                        rng.gen_range(1000u16..60000),
                        rng.gen_range(1u64..200),
                    )
                })
                .collect();
            (rng.gen_range(0u64..5000), rng.gen_range(0usize..5), flows)
        },
        |&(seed, chain_len, ref flows)| {
            prop_assert!(!flows.is_empty(), "generator always yields one flow");
            let plan = sdm_topology::campus::campus(seed);
            let mut sim = Simulator::new(&plan);
            // build the chain backwards so each hop knows its successor
            let mut next_addr: Option<Ipv4Addr> = None;
            let mut entry: Option<sdm_netsim::DeviceId> = None;
            for i in (0..chain_len).rev() {
                let router = plan.cores()[(seed as usize + i * 3) % plan.cores().len()];
                let (dev, addr) = sim.attach(
                    router,
                    Attachment::InPath,
                    Box::new(ChainHop { next: next_addr }),
                );
                next_addr = Some(addr);
                entry = Some(dev);
            }
            let total: u64 = flows.iter().map(|&(_, _, _, w)| w.max(1)).sum();
            for &(from, to, sp, w) in flows {
                let (from, to) = (from % 10, to % 10);
                let to = if to == from { (to + 1) % 10 } else { to };
                let ft = flow(&sim, from, to, sp.max(1000));
                let mut pkt = Packet::with_weight(ft, 256, w.max(1));
                if let Some(first) = next_addr {
                    pkt.encapsulate(Ipv4Addr(1), first);
                }
                let _ = entry;
                sim.inject_from_stub(StubId(from), pkt);
            }
            sim.run_until_idle();
            let s = sim.stats();
            prop_assert_eq!(s.delivered, total);
            prop_assert_eq!(s.dropped_ttl, 0);
            prop_assert_eq!(s.unroutable, 0);
            // every device saw every packet exactly once
            for d in 0..chain_len {
                prop_assert_eq!(s.device_received[d], total, "device {}", d);
            }
            // per-link loads sum to total link hops
            let link_sum: u64 = s.link_load.iter().sum();
            prop_assert_eq!(link_sum, s.link_hops);
            // per-stub deliveries sum to total deliveries
            let stub_sum: u64 = s.delivered_per_stub.iter().sum();
            prop_assert_eq!(stub_sum, s.delivered);
            Ok(())
        },
    );
}

/// Fragmentation accounting: packets strictly below MTU never fragment;
/// packets above it fragment on every hop they traverse.
#[test]
fn fragmentation_threshold_is_exact() {
    check(
        "fragmentation_threshold_is_exact",
        &Config::with_cases(64),
        |rng: &mut StdRng| (rng.gen_range(100u32..3000), rng.gen_range(200u32..2000)),
        |&(payload, mtu)| {
            let (payload, mtu) = (payload.max(100), mtu.max(200));
            let plan = sdm_topology::campus::campus(1);
            let mut sim = Simulator::new(&plan);
            sim.set_mtu(mtu);
            let ft = flow(&sim, 0, 5, 4444);
            sim.inject_from_stub(StubId(0), Packet::data(ft, payload));
            sim.run_until_idle();
            let s = sim.stats();
            prop_assert_eq!(s.delivered, 1);
            let wire = payload + 20;
            if wire > mtu {
                prop_assert_eq!(s.frag_events, s.link_hops);
            } else {
                prop_assert_eq!(s.frag_events, 0);
            }
            Ok(())
        },
    );
}

/// TTL bounds the number of router hops a packet can take; with ample
/// TTL nothing is dropped on a connected campus.
#[test]
fn ample_ttl_never_drops() {
    check(
        "ample_ttl_never_drops",
        &Config::with_cases(64),
        |rng: &mut StdRng| {
            (
                rng.gen_range(0u64..2000),
                rng.gen_range(0u32..10),
                rng.gen_range(0u32..10),
            )
        },
        |&(seed, from, to)| {
            let (from, to) = (from % 10, to % 10);
            let plan = sdm_topology::campus::campus(seed);
            let mut sim = Simulator::new(&plan);
            let to = if to == from { (to + 1) % 10 } else { to };
            let ft = flow(&sim, from, to, 1234);
            sim.inject_from_stub(StubId(from), Packet::data(ft, 100));
            sim.run_until_idle();
            prop_assert_eq!(sim.stats().delivered, 1);
            prop_assert_eq!(sim.stats().dropped_ttl, 0);
            // the shortest stub-to-stub path on this campus is at most 4 hops
            prop_assert!(sim.stats().link_hops <= 6);
            Ok(())
        },
    );
}

/// Deterministic (non-property) engine tests for link failure and tracing.
mod engine_features {
    use super::*;
    use sdm_netsim::{TraceLocation};

    #[test]
    fn link_failure_reroutes_traffic() {
        let plan = sdm_topology::campus::campus(1);
        let mut sim = Simulator::new(&plan);
        let ft = flow(&sim, 0, 5, 777);
        sim.inject_from_stub(StubId(0), Packet::data(ft, 100));
        sim.run_until_idle();
        assert_eq!(sim.stats().delivered, 1);

        // fail the uplink the first packet actually used; the campus is
        // dual-homed so traffic must still flow via the other one
        let topo = sim.topology();
        let edge = plan.edges()[0];
        let uplink = (0..topo.link_count())
            .map(sdm_topology::LinkId::from_index)
            .find(|&l| {
                let (a, b, _) = topo.link(l);
                (a == edge || b == edge) && sim.stats().link_load[l.index()] > 0
            })
            .expect("the used uplink is identifiable");
        sim.fail_link(uplink);
        sim.inject_from_stub(StubId(0), Packet::data(ft, 100));
        sim.run_until_idle();
        assert_eq!(sim.stats().delivered, 2, "rerouted around the failed link");
        let before = sim.stats().link_load[uplink.index()];
        sim.inject_from_stub(StubId(0), Packet::data(ft, 100));
        sim.run_until_idle();
        assert_eq!(
            sim.stats().link_load[uplink.index()],
            before,
            "failed link carries nothing new"
        );
        // restore and verify it can carry traffic again
        sim.restore_link(uplink);
        assert!(sim.failed_links().is_empty());
    }

    #[test]
    fn failing_all_uplinks_makes_stub_unreachable() {
        let plan = sdm_topology::campus::campus(1);
        let mut sim = Simulator::new(&plan);
        let edge = plan.edges()[5];
        let topo = sim.topology();
        let uplinks: Vec<_> = (0..topo.link_count())
            .map(sdm_topology::LinkId::from_index)
            .filter(|&l| {
                let (a, b, _) = topo.link(l);
                a == edge || b == edge
            })
            .collect();
        for l in uplinks {
            sim.fail_link(l);
        }
        let ft = flow(&sim, 0, 5, 888);
        sim.inject_from_stub(StubId(0), Packet::data(ft, 100));
        sim.run_until_idle();
        assert_eq!(sim.stats().delivered, 0);
        assert_eq!(sim.stats().unroutable, 1);
    }

    #[test]
    fn trace_records_full_journey_in_order() {
        let plan = sdm_topology::campus::campus(1);
        let mut sim = Simulator::new(&plan);
        sim.enable_trace(1000);
        let ft = flow(&sim, 0, 5, 999);
        sim.inject_from_stub(StubId(0), Packet::data(ft, 100));
        sim.run_until_idle();
        let trace = sim.trace();
        assert!(!trace.is_empty());
        // chronological order
        for w in trace.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        // starts at the source edge router, ends with terminal delivery
        assert_eq!(
            trace.first().unwrap().location,
            TraceLocation::Router(plan.edges()[0])
        );
        assert_eq!(
            trace.last().unwrap().location,
            TraceLocation::Delivered(StubId(5))
        );
        assert!(trace.iter().all(|e| e.flow == ft));
    }

    #[test]
    fn trace_limit_caps_memory() {
        let plan = sdm_topology::campus::campus(1);
        let mut sim = Simulator::new(&plan);
        sim.enable_trace(3);
        for sp in 0..50u16 {
            sim.inject_from_stub(StubId(0), Packet::data(flow(&sim, 0, 5, sp), 100));
        }
        sim.run_until_idle();
        assert_eq!(sim.trace().len(), 3);
    }
}

/// ECMP forwarding tests.
mod ecmp {
    use super::*;
    use sdm_netsim::EcmpMode;
    use sdm_topology::{NodeKind, Topology, NetworkPlan};

    /// A diamond: e0 - a - {b, c} - d - e1, two equal-cost paths b / c.
    fn diamond() -> NetworkPlan {
        let mut t = Topology::new();
        let e0 = t.add_node(NodeKind::EdgeRouter, "e0");
        let a = t.add_node(NodeKind::CoreRouter, "a");
        let b = t.add_node(NodeKind::CoreRouter, "b");
        let c = t.add_node(NodeKind::CoreRouter, "c");
        let d = t.add_node(NodeKind::CoreRouter, "d");
        let e1 = t.add_node(NodeKind::EdgeRouter, "e1");
        t.add_link(e0, a, 1).unwrap();
        t.add_link(a, b, 1).unwrap();
        t.add_link(a, c, 1).unwrap();
        t.add_link(b, d, 1).unwrap();
        t.add_link(c, d, 1).unwrap();
        t.add_link(d, e1, 1).unwrap();
        NetworkPlan::new(t, vec![], vec![a, b, c, d], vec![e0, e1])
    }

    #[test]
    fn ecmp_spreads_flows_across_equal_cost_paths() {
        let plan = diamond();
        let mut sim = Simulator::new(&plan);
        sim.set_ecmp(EcmpMode::FlowHash);
        for sp in 0..400u16 {
            let ft = flow(&sim, 0, 1, 1000 + sp);
            sim.inject_from_stub(StubId(0), Packet::data(ft, 100));
        }
        sim.run_until_idle();
        assert_eq!(sim.stats().delivered, 400);
        // links a-b (index 1) and a-c (index 2) both carry a fair share
        let (ab, ac) = (sim.stats().link_load[1], sim.stats().link_load[2]);
        assert_eq!(ab + ac, 400);
        assert!(ab > 120 && ac > 120, "unbalanced ECMP split: {ab}/{ac}");
    }

    #[test]
    fn disabled_ecmp_uses_single_path() {
        let plan = diamond();
        let mut sim = Simulator::new(&plan);
        for sp in 0..100u16 {
            let ft = flow(&sim, 0, 1, 1000 + sp);
            sim.inject_from_stub(StubId(0), Packet::data(ft, 100));
        }
        sim.run_until_idle();
        let (ab, ac) = (sim.stats().link_load[1], sim.stats().link_load[2]);
        assert_eq!(ab + ac, 100);
        assert!(ab == 0 || ac == 0, "deterministic tables must pick one path");
    }

    #[test]
    fn ecmp_is_flow_sticky() {
        // the same flow's packets always take the same path
        let plan = diamond();
        let mut sim = Simulator::new(&plan);
        sim.set_ecmp(EcmpMode::FlowHash);
        let ft = flow(&sim, 0, 1, 7777);
        for _ in 0..50 {
            sim.inject_from_stub(StubId(0), Packet::data(ft, 100));
        }
        sim.run_until_idle();
        let (ab, ac) = (sim.stats().link_load[1], sim.stats().link_load[2]);
        assert!(ab == 50 || ac == 50, "flow split across paths: {ab}/{ac}");
    }
}

/// Emulated fragmentation and reassembly.
mod fragmentation {
    use super::*;
    use sdm_netsim::FragmentationMode;

    #[test]
    fn oversized_packet_fragments_and_reassembles() {
        let plan = sdm_topology::campus::campus(1);
        let mut sim = Simulator::new(&plan);
        sim.set_mtu(500);
        sim.set_fragmentation(FragmentationMode::Emulate);
        let ft = flow(&sim, 0, 5, 4242);
        // 2000 B payload, 480 B chunks -> 5 fragments
        sim.inject_from_stub(StubId(0), Packet::data(ft, 2000));
        sim.run_until_idle();
        let s = sim.stats();
        assert_eq!(s.delivered, 1, "reassembled delivery counts once");
        assert_eq!(s.fragments_created, 5);
        assert_eq!(s.reassembly_events, 1);
        // fragments each traversed the remaining hops
        assert!(s.link_hops > 5);
    }

    #[test]
    fn fits_mtu_no_fragmentation() {
        let plan = sdm_topology::campus::campus(1);
        let mut sim = Simulator::new(&plan);
        sim.set_fragmentation(FragmentationMode::Emulate);
        let ft = flow(&sim, 0, 5, 4242);
        sim.inject_from_stub(StubId(0), Packet::data(ft, 1000));
        sim.run_until_idle();
        assert_eq!(sim.stats().fragments_created, 0);
        assert_eq!(sim.stats().reassembly_events, 0);
        assert_eq!(sim.stats().delivered, 1);
    }

    /// Tunnel endpoints reassemble: a device behind a tunnel receives the
    /// whole packet exactly once even when the tunnel fragmented it.
    #[test]
    fn tunnel_endpoint_reassembles_before_device() {
        struct Exit;
        impl Device for Exit {
            fn receive(&mut self, ctx: &mut DeviceCtx<'_>, pkt: sdm_netsim::PacketId) {
                assert!(ctx.pkt(pkt).frag.is_none(), "device must see whole packets");
                ctx.pkt_mut(pkt).decapsulate();
                ctx.forward(pkt);
            }
        }
        let plan = sdm_topology::campus::campus(2);
        let mut sim = Simulator::new(&plan);
        sim.set_mtu(600);
        sim.set_fragmentation(FragmentationMode::Emulate);
        let (exit_dev, exit_addr) =
            sim.attach(plan.cores()[5], Attachment::InPath, Box::new(Exit));
        let ft = flow(&sim, 0, 4, 999);
        // payload 580 + 20 inner = 600 fits; +20 tunnel = 620 fragments
        let mut pkt = Packet::data(ft, 580);
        pkt.encapsulate(Ipv4Addr(1), exit_addr);
        sim.inject_from_stub(StubId(0), pkt);
        sim.run_until_idle();
        let s = sim.stats();
        assert_eq!(s.delivered, 1);
        assert_eq!(s.device_received[exit_dev.index()], 1, "one reassembled packet");
        assert!(s.fragments_created >= 2);
        assert_eq!(s.reassembly_events, 1);
    }

    /// Property: payload is conserved through arbitrary fragment/reassemble
    /// cycles.
    #[test]
    fn payload_conserved_over_many_sizes() {
        for payload in [100u32, 481, 999, 1500, 2000, 4800, 9999] {
            for mtu in [300u32, 500, 1500] {
                let plan = sdm_topology::campus::campus(1);
                let mut sim = Simulator::new(&plan);
                sim.set_mtu(mtu);
                sim.set_fragmentation(FragmentationMode::Emulate);
                let ft = flow(&sim, 0, 7, (payload % 60000) as u16);
                sim.inject_from_stub(StubId(0), Packet::data(ft, payload));
                sim.run_until_idle();
                assert_eq!(
                    sim.stats().delivered,
                    1,
                    "payload {payload} mtu {mtu} must deliver once"
                );
            }
        }
    }
}

/// Device service-time queueing.
mod queueing {
    use super::*;

    struct Sink;
    impl Device for Sink {
        fn receive(&mut self, ctx: &mut DeviceCtx<'_>, pkt: sdm_netsim::PacketId) {
            ctx.pkt_mut(pkt).decapsulate();
            ctx.forward(pkt);
        }
    }

    #[test]
    fn back_to_back_arrivals_queue() {
        let plan = sdm_topology::campus::campus(1);
        let mut sim = Simulator::new(&plan);
        let (dev, addr) = sim.attach(plan.cores()[0], Attachment::InPath, Box::new(Sink));
        sim.set_device_service_time(dev, 10);
        // 5 packets arrive (nearly) simultaneously: waits 0,10,20,30,40
        for i in 0..5u16 {
            let ft = flow(&sim, 0, 5, 100 + i);
            let mut pkt = Packet::data(ft, 100);
            pkt.encapsulate(Ipv4Addr(1), addr);
            sim.inject_from_stub(StubId(0), pkt);
        }
        sim.run_until_idle();
        let s = sim.stats();
        assert_eq!(s.delivered, 5);
        assert_eq!(s.device_wait_total, 10 + 20 + 30 + 40);
        assert_eq!(s.device_wait_max, 40);
    }

    #[test]
    fn infinitely_fast_device_never_queues() {
        let plan = sdm_topology::campus::campus(1);
        let mut sim = Simulator::new(&plan);
        let (_, addr) = sim.attach(plan.cores()[0], Attachment::InPath, Box::new(Sink));
        for i in 0..20u16 {
            let ft = flow(&sim, 0, 5, 200 + i);
            let mut pkt = Packet::data(ft, 100);
            pkt.encapsulate(Ipv4Addr(1), addr);
            sim.inject_from_stub(StubId(0), pkt);
        }
        sim.run_until_idle();
        assert_eq!(sim.stats().device_wait_total, 0);
        assert_eq!(sim.stats().device_wait_max, 0);
    }

    #[test]
    fn spaced_arrivals_do_not_queue() {
        let plan = sdm_topology::campus::campus(1);
        let mut sim = Simulator::new(&plan);
        let (dev, addr) = sim.attach(plan.cores()[0], Attachment::InPath, Box::new(Sink));
        sim.set_device_service_time(dev, 3);
        for i in 0..5u64 {
            let ft = flow(&sim, 0, 5, 300 + i as u16);
            let mut pkt = Packet::data(ft, 100);
            pkt.encapsulate(Ipv4Addr(1), addr);
            sim.inject_from_stub_at(StubId(0), pkt, sdm_netsim::SimTime(i * 100));
        }
        sim.run_until_idle();
        assert_eq!(sim.stats().delivered, 5);
        assert_eq!(sim.stats().device_wait_total, 0);
    }
}

/// End-to-end latency accounting.
mod latency {
    use super::*;

    #[test]
    fn latency_equals_hop_count_on_quiet_network() {
        let plan = sdm_topology::campus::campus(1);
        let mut sim = Simulator::new(&plan);
        let ft = flow(&sim, 0, 5, 321);
        sim.inject_from_stub(StubId(0), Packet::data(ft, 100));
        sim.run_until_idle();
        let s = sim.stats();
        assert_eq!(s.delivered, 1);
        // one tick per link hop, nothing else
        assert_eq!(s.latency_total, s.link_hops);
        assert_eq!(s.latency_max, s.link_hops);
        assert!(s.avg_latency() > 0.0);
    }

    #[test]
    fn queueing_inflates_latency() {
        struct Sink;
        impl Device for Sink {
            fn receive(&mut self, ctx: &mut DeviceCtx<'_>, pkt: sdm_netsim::PacketId) {
                ctx.pkt_mut(pkt).decapsulate();
                ctx.forward(pkt);
            }
        }
        let plan = sdm_topology::campus::campus(1);
        let mut sim = Simulator::new(&plan);
        let (dev, addr) = sim.attach(plan.cores()[0], Attachment::InPath, Box::new(Sink));
        sim.set_device_service_time(dev, 100);
        for i in 0..4u16 {
            let ft = flow(&sim, 0, 5, 400 + i);
            let mut pkt = Packet::data(ft, 100);
            pkt.encapsulate(Ipv4Addr(1), addr);
            sim.inject_from_stub(StubId(0), pkt);
        }
        sim.run_until_idle();
        let s = sim.stats();
        assert_eq!(s.delivered, 4);
        // the last packet waited 300 ticks at the device
        assert!(s.latency_max >= 300, "latency_max = {}", s.latency_max);
        assert_eq!(s.device_wait_total, 100 + 200 + 300);
    }

    #[test]
    fn staggered_injection_timestamps_are_respected() {
        let plan = sdm_topology::campus::campus(1);
        let mut sim = Simulator::new(&plan);
        let ft = flow(&sim, 0, 5, 555);
        sim.inject_from_stub_at(StubId(0), Packet::data(ft, 100), sdm_netsim::SimTime(5000));
        sim.run_until_idle();
        // latency measured from the (late) injection time, not from zero
        assert!(sim.stats().latency_max < 100, "{}", sim.stats().latency_max);
    }
}

mod calendar_queue {
    //! The calendar queue must be observationally identical to the
    //! `BinaryHeap<Reverse<(time, seq)>>` it replaced: pops come out in
    //! nondecreasing time order, FIFO within a tick, regardless of how the
    //! schedule mixes near-future (bucketed) and far-future (heap
    //! overflow) times or interleaves pushes and pops.

    use super::*;
    use sdm_netsim::{CalendarQueue, SimTime};
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Reference model: the old global heap with an explicit FIFO
    /// sequence number as tie-break.
    #[derive(Default)]
    struct HeapModel {
        heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
        seq: u64,
    }

    impl HeapModel {
        fn push(&mut self, at: u64, item: u32) {
            self.heap.push(Reverse((at, self.seq, item)));
            self.seq += 1;
        }
        fn pop(&mut self) -> Option<(u64, u32)> {
            self.heap.pop().map(|Reverse((at, _, item))| (at, item))
        }
    }

    #[test]
    fn pop_order_matches_binary_heap() {
        check(
            "pop_order_matches_binary_heap",
            &Config::with_cases(96),
            |rng: &mut StdRng| {
                let ops = rng.gen_range(1usize..400);
                // (is_push, time-delta) pairs; deltas mix the bucketed
                // window (< 1024) with far-future heap spills.
                (0..ops)
                    .map(|_| {
                        let push = rng.gen_range(0u32..3) != 0;
                        let delta = match rng.gen_range(0u32..4) {
                            0 => rng.gen_range(0u64..4),        // same tick
                            1 => rng.gen_range(0u64..1024),     // in window
                            2 => rng.gen_range(1024u64..4096),  // spills
                            _ => rng.gen_range(0u64..100_000),  // far future
                        };
                        (push, delta)
                    })
                    .collect::<Vec<(bool, u64)>>()
            },
            |ops| {
                let mut cq: CalendarQueue<u32> = CalendarQueue::new();
                let mut model = HeapModel::default();
                let mut now = 0u64; // sim clock: last popped time
                let mut next_item = 0u32;
                for &(push, delta) in ops {
                    if push {
                        let at = now + delta;
                        cq.push(SimTime(at), next_item);
                        model.push(at, next_item);
                        next_item += 1;
                    } else {
                        let got = cq.pop().map(|(t, i)| (t.0, i));
                        let want = model.pop();
                        prop_assert_eq!(got, want);
                        if let Some((t, _)) = got {
                            now = t;
                        }
                    }
                    prop_assert_eq!(cq.len(), model.heap.len());
                }
                // Drain both: the tails must agree too.
                loop {
                    let got = cq.pop().map(|(t, i)| (t.0, i));
                    let want = model.pop();
                    prop_assert_eq!(got, want);
                    if got.is_none() {
                        break;
                    }
                }
                prop_assert!(cq.is_empty());
                Ok(())
            },
        );
    }
}
