//! The event queue of the simulator: a calendar (bucket) queue over exact
//! [`SimTime`] ticks with a binary-heap fallback for far-future events.
//!
//! Discrete-event traffic simulation schedules almost everything one link
//! traversal (= one tick) ahead, so a ring of per-tick buckets covering the
//! window `[cur, cur + W)` turns push and pop into O(1) vector operations —
//! no sift-up/down, no comparator, no moving payloads around a heap. Only
//! genuinely far-future events (long timers, deep service-queue backlogs)
//! overflow into a conventional heap and migrate into the ring as the
//! window advances.
//!
//! # Ordering contract
//!
//! Pops are ordered by time, then FIFO within a tick — exactly the
//! `(at, seq)` order of the `BinaryHeap<Reverse<Queued>>` implementation
//! this replaces (property-tested against it in `tests/proptests.rs`).
//! The FIFO argument: the coverage window end `cur + W` only grows, and it
//! crosses any tick `t` exactly once. Every push for `t` made *before* the
//! crossing goes to the heap (and carries a smaller sequence number than
//! any later push); every push after goes to the bucket. Migration drains
//! the heap in `(at, seq)` order into the bucket tail at the moment of the
//! crossing, before any bucket push for `t` can occur — so bucket append
//! order equals global push order for every tick.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::engine::SimTime;

/// Number of exact-tick buckets in the ring. Schedules within this many
/// ticks of the current time (virtually all simulation traffic) never touch
/// the heap.
const WINDOW: u64 = 1024;

struct FarEntry<T> {
    at: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for FarEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for FarEntry<T> {}
impl<T> PartialOrd for FarEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for FarEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A time-ordered, FIFO-within-tick event queue (see module docs).
pub struct CalendarQueue<T> {
    /// Ring of buckets; bucket `t % WINDOW` holds events for tick `t` when
    /// `t` lies inside `[cur, cur + WINDOW)`.
    buckets: Vec<VecDeque<T>>,
    /// The tick currently being drained; never decreases.
    cur: u64,
    /// Events currently stored in the ring.
    ring_len: usize,
    /// Far-future events, ordered by `(at, seq)`.
    far: BinaryHeap<Reverse<FarEntry<T>>>,
    /// Monotonic push counter, recorded for heap entries so equal-time
    /// entries pop in push order.
    seq: u64,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty queue starting at time zero.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..WINDOW).map(|_| VecDeque::new()).collect(),
            cur: 0,
            ring_len: 0,
            far: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Number of events stored.
    pub fn len(&self) -> usize {
        self.ring_len + self.far.len()
    }

    /// Whether no events are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `item` at `at`.
    ///
    /// `at` must not lie before the last popped time (the simulated past);
    /// this is debug-asserted, mirroring the engine's invariant.
    pub fn push(&mut self, at: SimTime, item: T) {
        debug_assert!(at.0 >= self.cur, "cannot schedule into the simulated past");
        let seq = self.seq;
        self.seq += 1;
        if at.0 < self.cur + WINDOW {
            self.buckets[(at.0 % WINDOW) as usize].push_back(item);
            self.ring_len += 1;
        } else {
            self.far.push(Reverse(FarEntry { at: at.0, seq, item }));
        }
    }

    /// Removes and returns the earliest event, FIFO within a tick.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        if self.ring_len == 0 {
            // Nothing inside the window: jump straight to the heap's next
            // event time (skipping the empty gap) and refill the ring.
            let next_at = self.far.peek()?.0.at;
            self.cur = next_at;
            self.migrate();
        }
        loop {
            let bucket = &mut self.buckets[(self.cur % WINDOW) as usize];
            if let Some(item) = bucket.pop_front() {
                self.ring_len -= 1;
                return Some((SimTime(self.cur), item));
            }
            // This tick is exhausted; advancing uncovers exactly one new
            // tick (cur + WINDOW - 1 after the increment) at the window's
            // far end — pull any heap events that now fit.
            self.cur += 1;
            self.migrate();
        }
    }

    /// Drains up to `max` events of the **earliest** tick into `out`
    /// (appending) and returns that tick, or `None` when the queue is
    /// empty.
    ///
    /// The drain never crosses a tick boundary: even if fewer than `max`
    /// events exist at the earliest tick, events of later ticks stay
    /// queued. This is what makes batched execution equivalent to scalar
    /// execution — processing a drained batch may schedule *new* events at
    /// the same tick (they land behind the batch in the bucket, exactly
    /// where scalar FIFO would pop them), and a subsequent call continues
    /// the same tick until it is truly exhausted.
    ///
    /// `pop_tick_batch(1, …)` pops exactly what [`CalendarQueue::pop`]
    /// would.
    ///
    /// # Example
    ///
    /// ```
    /// use sdm_netsim::{CalendarQueue, SimTime};
    ///
    /// let mut q = CalendarQueue::new();
    /// q.push(SimTime(3), "a");
    /// q.push(SimTime(3), "b");
    /// q.push(SimTime(7), "later");
    /// let mut batch = Vec::new();
    /// assert_eq!(q.pop_tick_batch(16, &mut batch), Some(SimTime(3)));
    /// assert_eq!(batch, vec!["a", "b"]); // tick 7 not touched
    /// assert_eq!(q.len(), 1);
    /// ```
    pub fn pop_tick_batch(&mut self, max: usize, out: &mut Vec<T>) -> Option<SimTime> {
        if max == 0 {
            return None;
        }
        if self.ring_len == 0 {
            // Same window jump as `pop`: skip the empty gap to the heap's
            // earliest event and refill the ring.
            let next_at = self.far.peek()?.0.at;
            self.cur = next_at;
            self.migrate();
        }
        loop {
            let bucket = &mut self.buckets[(self.cur % WINDOW) as usize];
            if !bucket.is_empty() {
                let n = bucket.len().min(max);
                out.extend(bucket.drain(..n));
                self.ring_len -= n;
                return Some(SimTime(self.cur));
            }
            self.cur += 1;
            self.migrate();
        }
    }

    /// Moves every heap event inside `[cur, cur + WINDOW)` into the ring,
    /// in `(at, seq)` order.
    fn migrate(&mut self) {
        while let Some(Reverse(top)) = self.far.peek() {
            if top.at >= self.cur + WINDOW {
                break;
            }
            let Reverse(e) = self.far.pop().expect("peeked");
            debug_assert!(e.at >= self.cur, "heap held a past event");
            self.buckets[(e.at % WINDOW) as usize].push_back(e.item);
            self.ring_len += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_then_fifo_order() {
        let mut q = CalendarQueue::new();
        q.push(SimTime(5), "a");
        q.push(SimTime(1), "b");
        q.push(SimTime(5), "c");
        q.push(SimTime(1), "d");
        let popped: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            popped,
            vec![
                (SimTime(1), "b"),
                (SimTime(1), "d"),
                (SimTime(5), "a"),
                (SimTime(5), "c"),
            ]
        );
    }

    #[test]
    fn far_future_events_survive_and_order() {
        let mut q = CalendarQueue::new();
        q.push(SimTime(3), 1u32);
        q.push(SimTime(WINDOW * 10), 2); // far beyond the window
        q.push(SimTime(WINDOW * 10), 3);
        q.push(SimTime(WINDOW + 5), 4); // just beyond
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((SimTime(3), 1)));
        assert_eq!(q.pop(), Some((SimTime(WINDOW + 5), 4)));
        assert_eq!(q.pop(), Some((SimTime(WINDOW * 10), 2)));
        assert_eq!(q.pop(), Some((SimTime(WINDOW * 10), 3)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_at_current_tick_is_fifo() {
        let mut q = CalendarQueue::new();
        q.push(SimTime(2), 1u32);
        q.push(SimTime(2), 2);
        assert_eq!(q.pop(), Some((SimTime(2), 1)));
        // processing event 1 schedules another event at the same tick
        q.push(SimTime(2), 3);
        assert_eq!(q.pop(), Some((SimTime(2), 2)));
        assert_eq!(q.pop(), Some((SimTime(2), 3)));
    }

    #[test]
    fn heap_to_ring_migration_preserves_fifo_per_tick() {
        let mut q = CalendarQueue::new();
        let t = WINDOW + 50; // starts outside the window
        q.push(SimTime(t), 1u32); // heap-bound
        q.push(SimTime(0), 0);
        q.push(SimTime(60), 9);
        assert_eq!(q.pop(), Some((SimTime(0), 0)));
        // advancing to 60 slides the window across t, migrating entry 1
        assert_eq!(q.pop(), Some((SimTime(60), 9)));
        // these now land in t's bucket directly, behind the migrated entry
        q.push(SimTime(t), 2);
        q.push(SimTime(t), 3);
        assert_eq!(q.pop(), Some((SimTime(t), 1)));
        assert_eq!(q.pop(), Some((SimTime(t), 2)));
        assert_eq!(q.pop(), Some((SimTime(t), 3)));
    }

    #[test]
    fn tick_batch_drains_one_tick_only() {
        let mut q = CalendarQueue::new();
        q.push(SimTime(2), 1u32);
        q.push(SimTime(2), 2);
        q.push(SimTime(2), 3);
        q.push(SimTime(4), 9);
        let mut out = Vec::new();
        assert_eq!(q.pop_tick_batch(2, &mut out), Some(SimTime(2)));
        assert_eq!(out, vec![1, 2], "capped at max");
        out.clear();
        assert_eq!(q.pop_tick_batch(8, &mut out), Some(SimTime(2)));
        assert_eq!(out, vec![3], "finishes the tick, does not cross into t4");
        out.clear();
        assert_eq!(q.pop_tick_batch(8, &mut out), Some(SimTime(4)));
        assert_eq!(out, vec![9]);
        assert_eq!(q.pop_tick_batch(8, &mut out), None);
        assert_eq!(q.pop_tick_batch(0, &mut out), None, "zero max drains nothing");
    }

    #[test]
    fn tick_batch_sees_events_pushed_mid_tick() {
        // Processing a drained batch may schedule new work at the same
        // tick; the next drain must return the same tick, FIFO-continuing.
        let mut q = CalendarQueue::new();
        q.push(SimTime(5), 1u32);
        q.push(SimTime(5), 2);
        let mut out = Vec::new();
        assert_eq!(q.pop_tick_batch(16, &mut out), Some(SimTime(5)));
        q.push(SimTime(5), 3); // "emitted" while handling the batch
        out.clear();
        assert_eq!(q.pop_tick_batch(16, &mut out), Some(SimTime(5)));
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn tick_batch_crosses_heap_spill_boundary_in_order() {
        // Events at the same tick split across ring and heap (pushed
        // before vs after the window crossed the tick) must drain in
        // global push order, exactly like scalar pop.
        let mut q = CalendarQueue::new();
        let t = WINDOW + 50;
        q.push(SimTime(t), 1u32); // heap-bound (outside the window)
        q.push(SimTime(0), 0);
        q.push(SimTime(60), 9); // popping this slides the window across t
        let mut out = Vec::new();
        assert_eq!(q.pop_tick_batch(16, &mut out), Some(SimTime(0)));
        assert_eq!(q.pop_tick_batch(16, &mut out), Some(SimTime(60)));
        q.push(SimTime(t), 2); // now ring-bound, behind the migrated entry
        q.push(SimTime(t), 3);
        out.clear();
        assert_eq!(q.pop_tick_batch(16, &mut out), Some(SimTime(t)));
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn tick_batch_skips_empty_gap_to_far_future() {
        let mut q = CalendarQueue::new();
        q.push(SimTime(WINDOW * 3 + 7), 42u32);
        q.push(SimTime(WINDOW * 3 + 7), 43);
        let mut out = Vec::new();
        assert_eq!(q.pop_tick_batch(16, &mut out), Some(SimTime(WINDOW * 3 + 7)));
        assert_eq!(out, vec![42, 43]);
        assert!(q.is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "past")]
    fn pushing_into_the_past_is_rejected() {
        let mut q = CalendarQueue::new();
        q.push(SimTime(10), ());
        let _ = q.pop();
        q.push(SimTime(3), ());
    }
}
