//! Discrete-event packet-level network simulator for the SDM
//! policy-enforcement reproduction.
//!
//! This crate substitutes for the paper's OMNET++/INET evaluation platform
//! (§IV.A). It simulates a *traditional non-SDN network*: routers forward
//! packets hop by hop along converged OSPF shortest paths and know nothing
//! about policies; all programmability lives in attached [`Device`]s (the
//! policy proxies and software-defined middleboxes implemented in
//! `sdm-core`).
//!
//! Key pieces:
//!
//! * [`Ipv4Addr`], [`Prefix`], [`AddressPlan`] — addressing, one stub subnet
//!   per edge router.
//! * [`Packet`], [`FiveTuple`], [`Label`] — packets with IP-over-IP
//!   encapsulation and the §III.E steering label.
//! * [`Simulator`], [`Device`], [`SimStats`] — the event engine with
//!   per-device load, per-link load, encapsulation-overhead and
//!   fragmentation accounting.
//!
//! Packets carry a `weight` so that one event can represent many identical
//! packets of a flow: since every steering decision in the reproduced system
//! is flow-sticky, aggregating a flow's packets is lossless for all load
//! metrics. The figure-scale experiments use this fast path; protocol-level
//! tests use weight-1 packets.
//!
//! # Example
//!
//! ```
//! use sdm_netsim::{Simulator, Packet, FiveTuple, Protocol, StubId};
//!
//! let plan = sdm_topology::campus::campus(1);
//! let mut sim = Simulator::new(&plan);
//! let ft = FiveTuple {
//!     src: sim.addresses().host(StubId(0), 0),
//!     dst: sim.addresses().host(StubId(1), 0),
//!     src_port: 4000, dst_port: 80, proto: Protocol::Tcp,
//! };
//! sim.inject_from_stub(StubId(0), Packet::data(ft, 512));
//! sim.run_until_idle();
//! assert_eq!(sim.stats().delivered, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod arena;
mod engine;
mod packet;
mod queue;

pub use addr::{AddressPlan, Ipv4Addr, ParseAddrError, Prefix, StubId};
pub use arena::{PacketArena, PacketId};
pub use engine::{
    preassigned_device_addr, Attachment, Device, DeviceCtx, DeviceId, EcmpMode,
    FragmentationMode, SimStats, SimTime, Simulator, TraceEvent, TraceLocation,
};
pub use queue::CalendarQueue;
pub use packet::{
    FiveTuple, FragInfo, Ipv4Header, Label, Packet, PacketKind, Protocol, DEFAULT_TTL,
    IP_HEADER_LEN, SEGMENT_LEN,
};
