//! Index-based packet storage for the simulation hot path.
//!
//! Every in-flight [`Packet`] lives in one [`PacketArena`] slot and is
//! referred to by a copyable [`PacketId`]. The event queue, the router
//! forwarding path and the device API move these 4-byte ids instead of
//! ~150-byte packet structs, so scheduling a hop never memcpys a packet
//! and never touches its heap allocations (tunnel stack, source route).
//! Freed slots go on a free list and are reused in LIFO order, keeping the
//! arena's footprint at the peak number of simultaneously in-flight
//! packets rather than the total injected.
//!
//! The arena also counts total allocations ([`PacketArena::allocations`]):
//! the engine's no-deep-clone guarantee is tested by asserting exactly one
//! allocation per injected packet on the plain forwarding path.
//!
//! Handle invariant: a [`PacketId`] is valid from allocation until the
//! packet is delivered or dropped, at which point the slot may be reused
//! and the id must not be dereferenced again. Ids are meaningful only
//! within their own simulator — slot numbering depends on allocation
//! order, which is why nothing observable (stats, traces, table state)
//! may key off raw id values: the vector hot path renumbers slots
//! relative to the scalar path without changing any output.

use crate::packet::Packet;

/// Handle to a packet stored in a [`PacketArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketId(pub(crate) u32);

impl PacketId {
    /// Dense slot index of this packet.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Slab of in-flight packets with a free list.
#[derive(Debug, Default)]
pub struct PacketArena {
    slots: Vec<Option<Packet>>,
    free: Vec<u32>,
    allocations: u64,
}

impl PacketArena {
    /// An empty arena.
    pub fn new() -> Self {
        PacketArena::default()
    }

    /// Stores `pkt`, returning its id. Reuses a freed slot when available.
    pub fn alloc(&mut self, pkt: Packet) -> PacketId {
        self.allocations += 1;
        match self.free.pop() {
            Some(i) => {
                debug_assert!(self.slots[i as usize].is_none(), "free-list slot occupied");
                self.slots[i as usize] = Some(pkt);
                PacketId(i)
            }
            None => {
                let i = self.slots.len() as u32;
                self.slots.push(Some(pkt));
                PacketId(i)
            }
        }
    }

    /// The packet behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was freed or never allocated.
    pub fn get(&self, id: PacketId) -> &Packet {
        self.slots[id.index()].as_ref().expect("stale PacketId")
    }

    /// Mutable access to the packet behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was freed or never allocated.
    pub fn get_mut(&mut self, id: PacketId) -> &mut Packet {
        self.slots[id.index()].as_mut().expect("stale PacketId")
    }

    /// Removes the packet behind `id`, returning it and recycling the slot.
    ///
    /// # Panics
    ///
    /// Panics if `id` was freed or never allocated.
    pub fn free(&mut self, id: PacketId) -> Packet {
        let pkt = self.slots[id.index()].take().expect("stale PacketId");
        self.free.push(id.0);
        pkt
    }

    /// Packets currently stored.
    pub fn in_use(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total `alloc` calls over the arena's lifetime (never decreases).
    pub fn allocations(&self) -> u64 {
        self.allocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FiveTuple, Protocol};

    fn pkt(port: u16) -> Packet {
        Packet::data(
            FiveTuple {
                src: "10.0.0.1".parse().unwrap(),
                dst: "10.1.0.1".parse().unwrap(),
                src_port: port,
                dst_port: 80,
                proto: Protocol::Tcp,
            },
            100,
        )
    }

    #[test]
    fn alloc_get_free_roundtrip() {
        let mut a = PacketArena::new();
        let id = a.alloc(pkt(1));
        assert_eq!(a.get(id).src_port, 1);
        a.get_mut(id).payload_len = 7;
        assert_eq!(a.get(id).payload_len, 7);
        assert_eq!(a.in_use(), 1);
        let p = a.free(id);
        assert_eq!(p.payload_len, 7);
        assert_eq!(a.in_use(), 0);
    }

    #[test]
    fn slots_are_reused_and_allocations_counted() {
        let mut a = PacketArena::new();
        let id1 = a.alloc(pkt(1));
        a.free(id1);
        let id2 = a.alloc(pkt(2));
        assert_eq!(id1.index(), id2.index(), "freed slot must be reused");
        let _id3 = a.alloc(pkt(3));
        assert_eq!(a.allocations(), 3);
        assert_eq!(a.in_use(), 2);
    }

    #[test]
    #[should_panic(expected = "stale PacketId")]
    fn stale_id_detected() {
        let mut a = PacketArena::new();
        let id = a.alloc(pkt(1));
        a.free(id);
        let _ = a.get(id);
    }
}
