//! The discrete-event simulation engine: routers forward packets along OSPF
//! shortest paths, attached devices (policy proxies, middleboxes) receive
//! and re-emit packets, and every action is accounted in [`SimStats`].
//!
//! This is the repo's substitute for the paper's OMNET++/INET setup: the
//! routers here are *policy-oblivious* — they look at the outermost
//! destination address only, exactly like the legacy routers in §II.
//!
//! # Hot-path architecture
//!
//! Every in-flight packet lives in a [`PacketArena`] slot and is scheduled
//! by its 4-byte [`PacketId`]; events are dispatched from a
//! [`CalendarQueue`] of exact-tick buckets (heap fallback for far-future
//! timers). Per hop the engine therefore moves a 16-byte event, not a
//! packet struct, and performs no hash lookups: device addresses decode
//! arithmetically (they are assigned densely from `172.16.0.0/12`), link
//! ids come from a flat `node × node` table, and stub/gateway targets from
//! per-node arrays. Fragmentation keeps the original packet parked in the
//! arena and sends lightweight fragments that reference it, so the
//! forwarding path never deep-clones a packet.
//!
//! # Vector execution
//!
//! By default [`Simulator::run_until_idle`] executes VPP-style: it drains
//! up to `SDM_BATCH` (default 256) same-tick events from the calendar
//! queue into a reusable scratch vector and hands consecutive deliveries
//! to the same device to [`Device::receive_batch`] as one run, letting the
//! device amortize its per-packet costs (one state-lock acquisition per
//! run, one flow/label-table probe per consecutive same-flow stretch)
//! while the arena accesses stay sequential and cache-hot. The batch
//! drain never crosses a tick boundary, so the global event order — time,
//! then FIFO within a tick — is exactly the scalar order and the output
//! is bit-identical to `SDM_BATCH=1` (pinned by the scalar-vs-batched
//! equivalence property test). See DESIGN.md, "Vector execution model".

use std::fmt;

use sdm_util::FxHashMap;

use sdm_topology::{NetworkPlan, NodeId, NodeKind, RoutingTables, Topology};

use crate::addr::{AddressPlan, Ipv4Addr, StubId};
use crate::arena::{PacketArena, PacketId};
use crate::packet::{FiveTuple, FragInfo, Packet, PacketKind, IP_HEADER_LEN};
use crate::queue::CalendarQueue;

/// Simulated time in abstract ticks (one tick = one link traversal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// This time plus `ticks`.
    pub fn after(self, ticks: u64) -> SimTime {
        SimTime(self.0 + ticks)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of a device attached to the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// Dense index of this device.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// How the simulator treats packets that exceed a link MTU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FragmentationMode {
    /// Count MTU violations in [`SimStats::frag_events`] but deliver the
    /// packet whole (the default; sufficient for the load experiments).
    #[default]
    CountOnly,
    /// Emulate IP fragmentation: split the packet at the first over-MTU
    /// link and reassemble at the consuming endpoint (tunnel-endpoint
    /// device or final destination), accounting the extra packets on the
    /// wire and the reassembly work — the overhead §III.E eliminates.
    /// Applies to weight-1 data packets; aggregates fall back to counting.
    Emulate,
}

/// Router forwarding discipline for equal-cost shortest paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EcmpMode {
    /// Single deterministic next hop per destination (the tie-broken
    /// Dijkstra tables) — the default, matching an ECMP-free OSPF config.
    #[default]
    Disabled,
    /// OSPF equal-cost multipath: routers split flows across all
    /// equal-cost next hops by hashing the flow identifier, keeping each
    /// flow on one path.
    FlowHash,
}

/// How a device is wired to its router (§III.A, Figure 1): *in-path* devices
/// sit on the wire (no extra hop), *off-path* devices hang off the router on
/// an access link (one extra link traversal each way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attachment {
    /// Between the router and the rest of the network; transparent, no
    /// extra hop.
    InPath,
    /// On a subnet off the router; each visit costs one access-link
    /// traversal in and one out.
    OffPath,
}

/// A programmable node attached to the network: a policy proxy or a
/// software-defined middlebox.
///
/// Devices interact with the world only through [`DeviceCtx`]; the engine
/// owns them. All state a device needs must be moved in at construction.
/// Packets are handed over as arena ids — read or mutate them in place via
/// [`DeviceCtx::pkt`] / [`DeviceCtx::pkt_mut`], then [`DeviceCtx::forward`]
/// or [`DeviceCtx::deliver_local`] the id (or [`DeviceCtx::drop_pkt`] to
/// consume it).
pub trait Device {
    /// Called when a packet addressed to this device (or intercepted by it)
    /// arrives.
    fn receive(&mut self, ctx: &mut DeviceCtx<'_>, pkt: PacketId);

    /// Called with a *run* of packets that arrived at this device at the
    /// same tick (the vector execution path, see the module docs). `pkts`
    /// is in arrival (FIFO) order and is never empty.
    ///
    /// The default implementation loops [`Device::receive`], which is
    /// always correct. Devices may override it to amortize per-packet
    /// costs — take a state lock once, probe flow/label tables once per
    /// consecutive same-flow run — but an override **must** be observably
    /// identical to the per-packet loop: same counters, same emitted
    /// packets in the same order. The scalar-vs-batched equivalence
    /// property test pins this for the in-tree devices.
    fn receive_batch(&mut self, ctx: &mut DeviceCtx<'_>, pkts: &[PacketId]) {
        for &p in pkts {
            self.receive(ctx, p);
        }
    }

    /// Called when a timer set through [`DeviceCtx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, key: u64) {
        let _ = (ctx, key);
    }
}

/// Side-effect interface handed to a [`Device`] during callbacks.
///
/// Forward/deliver/timer actions are buffered and applied by the engine
/// after the callback returns, in order. Packet reads and mutations go
/// straight to the arena.
pub struct DeviceCtx<'a> {
    now: SimTime,
    dev: DeviceId,
    addr: Ipv4Addr,
    router: NodeId,
    arena: &'a mut PacketArena,
    actions: &'a mut Vec<Action>,
}

enum Action {
    Forward(PacketId),
    DeliverLocal(PacketId),
    SetTimer { delay: u64, key: u64 },
}

impl<'a> DeviceCtx<'a> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This device's id.
    pub fn id(&self) -> DeviceId {
        self.dev
    }

    /// This device's own address (tunnel endpoint address).
    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// The router this device is attached to.
    pub fn router(&self) -> NodeId {
        self.router
    }

    /// Read access to a packet this device holds.
    pub fn pkt(&self, id: PacketId) -> &Packet {
        self.arena.get(id)
    }

    /// In-place mutable access to a packet this device holds.
    pub fn pkt_mut(&mut self, id: PacketId) -> &mut Packet {
        self.arena.get_mut(id)
    }

    /// Stores a newly created packet (e.g. a control packet) in the arena
    /// so it can be forwarded.
    pub fn alloc(&mut self, pkt: Packet) -> PacketId {
        self.arena.alloc(pkt)
    }

    /// Consumes a packet terminally (a device-level drop); frees its slot.
    pub fn drop_pkt(&mut self, id: PacketId) {
        let _ = self.arena.free(id);
    }

    /// Re-emits a packet into the network at the attachment router; it will
    /// be routed by its outermost destination address.
    pub fn forward(&mut self, id: PacketId) {
        self.actions.push(Action::Forward(id));
    }

    /// Terminally delivers a packet into this device's local stub network
    /// (used by proxies for inbound traffic that has passed all policies).
    pub fn deliver_local(&mut self, id: PacketId) {
        self.actions.push(Action::DeliverLocal(id));
    }

    /// Schedules [`Device::on_timer`] with `key` after `delay` ticks.
    pub fn set_timer(&mut self, delay: u64, key: u64) {
        self.actions.push(Action::SetTimer { delay, key });
    }
}

/// Aggregated counters of one simulation run. All counters are weighted: an
/// aggregate packet of weight `w` counts as `w` packets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Packets terminally delivered to stub hosts.
    pub delivered: u64,
    /// Packets delivered to destinations outside the enterprise (through a
    /// gateway).
    pub delivered_external: u64,
    /// Per-stub delivered packet counts (indexed by [`StubId`]).
    pub delivered_per_stub: Vec<u64>,
    /// Packets received per device (indexed by [`DeviceId`]) — the
    /// middlebox *load* of the paper's figures.
    pub device_received: Vec<u64>,
    /// Router-to-router link traversals.
    pub link_hops: u64,
    /// Per-link traversal counts (indexed by `LinkId`).
    pub link_load: Vec<u64>,
    /// Extra access-link traversals to/from off-path devices.
    pub device_link_hops: u64,
    /// Link traversals made while IP-over-IP encapsulated.
    pub encapsulated_hops: u64,
    /// Extra header bytes carried across links due to encapsulation.
    pub extra_header_bytes: u64,
    /// Hop events where the packet exceeded the link MTU (the fragmentation
    /// events §III.E eliminates).
    pub frag_events: u64,
    /// Packets dropped because TTL reached zero.
    pub dropped_ttl: u64,
    /// Packets dropped because no route / owner existed for the destination.
    pub unroutable: u64,
    /// Control packets (label-ready) received by devices.
    pub control_received: u64,
    /// Fragments created under [`FragmentationMode::Emulate`].
    pub fragments_created: u64,
    /// Reassembly completions at consuming endpoints.
    pub reassembly_events: u64,
    /// Total queueing wait (tick·packets) accumulated in front of devices
    /// with a configured service time.
    pub device_wait_total: u64,
    /// Worst single queueing wait (ticks) observed at any device.
    pub device_wait_max: u64,
    /// Total end-to-end delivery latency (tick·packets) over packets that
    /// carried an injection timestamp.
    pub latency_total: u64,
    /// Worst single end-to-end delivery latency (ticks).
    pub latency_max: u64,
}

impl SimStats {
    /// Mean end-to-end latency per delivered packet (ticks).
    pub fn avg_latency(&self) -> f64 {
        let n = self.delivered + self.delivered_external;
        if n == 0 {
            0.0
        } else {
            self.latency_total as f64 / n as f64
        }
    }

    /// Folds another run's counters into this one: sums every additive
    /// counter (element-wise for the per-stub / per-device / per-link
    /// vectors) and takes the maximum of the worst-case trackers. This is
    /// the deterministic merge the flow-sharded data plane uses — since
    /// every counter is a `u64` sum or max, the result is independent of
    /// merge order.
    ///
    /// # Panics
    ///
    /// Panics if the per-entity vectors disagree in length (the two runs
    /// were built from different network plans or device sets).
    pub fn merge(&mut self, other: &SimStats) {
        fn add_vec(dst: &mut [u64], src: &[u64], what: &str) {
            assert_eq!(dst.len(), src.len(), "SimStats::merge: {what} length mismatch");
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
        self.delivered += other.delivered;
        self.delivered_external += other.delivered_external;
        add_vec(&mut self.delivered_per_stub, &other.delivered_per_stub, "delivered_per_stub");
        add_vec(&mut self.device_received, &other.device_received, "device_received");
        self.link_hops += other.link_hops;
        add_vec(&mut self.link_load, &other.link_load, "link_load");
        self.device_link_hops += other.device_link_hops;
        self.encapsulated_hops += other.encapsulated_hops;
        self.extra_header_bytes += other.extra_header_bytes;
        self.frag_events += other.frag_events;
        self.dropped_ttl += other.dropped_ttl;
        self.unroutable += other.unroutable;
        self.control_received += other.control_received;
        self.fragments_created += other.fragments_created;
        self.reassembly_events += other.reassembly_events;
        self.device_wait_total += other.device_wait_total;
        self.device_wait_max = self.device_wait_max.max(other.device_wait_max);
        self.latency_total += other.latency_total;
        self.latency_max = self.latency_max.max(other.latency_max);
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "delivered {} (+{} external), {} link hops, {} encapsulated, \
{} extra header B",
            self.delivered,
            self.delivered_external,
            self.link_hops,
            self.encapsulated_hops,
            self.extra_header_bytes
        )?;
        write!(
            f,
            "frag events {}, fragments {}, reassemblies {}, ttl drops {}, \
unroutable {}, control {}",
            self.frag_events,
            self.fragments_created,
            self.reassembly_events,
            self.dropped_ttl,
            self.unroutable,
            self.control_received
        )
    }
}

#[derive(Debug, Clone, Copy)]
enum EventKind {
    Arrive { node: NodeId, pkt: PacketId },
    DeviceRecv { dev: DeviceId, pkt: PacketId },
    Timer { dev: DeviceId, key: u64 },
}

struct DeviceSlot {
    device: Box<dyn Device>,
    router: NodeId,
    addr: Ipv4Addr,
    attachment: Attachment,
}

/// Base of the device (tunnel endpoint) address space: `172.16.0.0/12`.
const DEVICE_BASE: u32 = (172 << 24) | (16 << 16);

/// Sentinel for "no entry" in the flat node-indexed tables.
const NONE_U32: u32 = u32::MAX;

/// The address [`Simulator::attach`] will assign to the `index`-th attached
/// device. Address assignment is deterministic so that controllers can
/// pre-compute tunnel endpoints before the devices exist.
pub fn preassigned_device_addr(index: usize) -> Ipv4Addr {
    Ipv4Addr(DEVICE_BASE + index as u32 + 1)
}

/// The discrete-event network simulator.
///
/// Owns the topology, the converged routing tables, the addressing plan and
/// all attached devices. Inject packets with [`Simulator::inject_from_stub`]
/// (outbound traffic intercepted by the stub's proxy) or
/// [`Simulator::inject_at_router`], then [`Simulator::run_until_idle`].
///
/// # Example
///
/// ```
/// use sdm_netsim::{Simulator, Packet, FiveTuple, Protocol, StubId};
/// let plan = sdm_topology::campus::campus(1);
/// let mut sim = Simulator::new(&plan);
/// let ft = FiveTuple {
///     src: sim.addresses().host(StubId(0), 0),
///     dst: sim.addresses().host(StubId(1), 0),
///     src_port: 9999, dst_port: 80, proto: Protocol::Tcp,
/// };
/// sim.inject_from_stub(StubId(0), Packet::data(ft, 500));
/// sim.run_until_idle();
/// assert_eq!(sim.stats().delivered, 1);
/// ```
pub struct Simulator {
    topo: Topology,
    routes: RoutingTables,
    addrs: AddressPlan,
    gateways: Vec<NodeId>,
    devices: Vec<DeviceSlot>,
    /// In-flight packet storage; events carry ids into this arena.
    arena: PacketArena,
    /// Per-stub intercepting proxy device (indexed by [`StubId`]).
    stub_handler: Vec<Option<DeviceId>>,
    /// Per-router ingress interceptor (indexed by [`NodeId`]).
    ingress_handler: Vec<Option<DeviceId>>,
    /// Stub attached at each router, [`NONE_U32`] if none (flat version of
    /// [`AddressPlan::stub_at`], consulted on every local delivery).
    stub_at_node: Vec<u32>,
    /// Nearest gateway per router (ties broken towards the smaller node
    /// id, matching a `min` over `(distance, node)`); rebuilt on routing
    /// changes. [`NONE_U32`] = no gateway reachable.
    nearest_gw: Vec<u32>,
    /// Flat `node × node` link-id table; [`NONE_U32`] = not adjacent.
    link_at: Vec<u32>,
    queue: CalendarQueue<EventKind>,
    now: SimTime,
    stats: SimStats,
    mtu: u32,
    actions: Vec<Action>,
    failed_links: Vec<sdm_topology::LinkId>,
    trace: Option<Vec<TraceEvent>>,
    trace_limit: usize,
    /// Events discarded after the trace filled up (see
    /// [`Simulator::trace_dropped`]).
    trace_dropped: u64,
    /// Device-arrival trace records deferred by the vector path so they
    /// interleave with delivery records exactly as the scalar loop emits
    /// them (see [`Simulator::flush_pending_traces`]).
    trace_pending: Vec<(PacketId, DeviceId, FiveTuple, u64)>,
    /// Hot-path telemetry collector (disabled by default; see
    /// [`Simulator::set_telemetry`]).
    tel: std::sync::Arc<sdm_telemetry::ShardTelemetry>,
    ecmp: EcmpMode,
    frag_mode: FragmentationMode,
    frag_seq: u64,
    /// Per-split reassembly state, keyed by fragment id: the parent packet
    /// stays parked in the arena until the last fragment arrives.
    reassembly: FxHashMap<u64, FragState>,
    /// Per-device (service ticks per packet, busy-until time).
    service: Vec<(u64, SimTime)>,
    /// Events drained per batch on the vector execution path (`SDM_BATCH`,
    /// default 256); 1 selects the scalar per-event loop.
    batch: usize,
    /// Reusable scratch for one drained event batch (vector path).
    scratch: Vec<EventKind>,
    /// Reusable scratch for the packet run handed to one device (vector
    /// path).
    ready: Vec<PacketId>,
}

/// Default event-batch size of the vector execution path.
const DEFAULT_BATCH: usize = 256;

/// Batch size from the `SDM_BATCH` environment variable (default
/// [`DEFAULT_BATCH`]; values below 1 clamp to 1 = scalar).
fn batch_from_env() -> usize {
    std::env::var("SDM_BATCH")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(DEFAULT_BATCH, |b| b.max(1))
}

/// Bookkeeping of one emulated fragmentation: fragments reference the
/// parent packet (parked in the arena) instead of each carrying a clone of
/// its header stack.
struct FragState {
    /// The original packet, parked in the arena until reassembly.
    parent: PacketId,
    received: Vec<bool>,
    /// Sum of payload bytes received so far.
    payload: u32,
    /// Outermost TTL of the first-received fragment — the reassembled
    /// whole resumes with it (all fragments follow the same path, so it
    /// equals the TTL the whole packet would have had).
    first_ttl: Option<u8>,
    /// Wire bytes each fragment carries beyond its own single IP header
    /// (the parent's tunnel stack and pending source-route segments).
    extra_hdr: u32,
    /// Whether the parent was tunnel-encapsulated at split time.
    tunneled: bool,
}

/// Where a traced packet was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceLocation {
    /// Arrived at a router.
    Router(NodeId),
    /// Delivered to an attached device.
    Device(DeviceId),
    /// Terminally delivered into a stub network.
    Delivered(StubId),
    /// Left the enterprise through a gateway.
    External(NodeId),
}

/// One observation of a packet's journey (recorded when tracing is on).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// When it was observed.
    pub at: SimTime,
    /// Where.
    pub location: TraceLocation,
    /// The packet's original flow identifier.
    pub flow: FiveTuple,
    /// Aggregate weight of the packet.
    pub weight: u64,
}

impl Simulator {
    /// Builds a simulator over a generated network plan with default link
    /// MTU (1500 bytes).
    pub fn new(plan: &NetworkPlan) -> Self {
        let topo = plan.topology().clone();
        let routes = topo.routing_tables();
        let addrs = AddressPlan::new(plan);
        let n = topo.node_count();
        let n_links = topo.link_count();
        let mut link_at = vec![NONE_U32; n * n];
        for i in 0..n_links {
            let (a, b, _) = topo.link(sdm_topology::LinkId::from_index(i));
            link_at[a.index() * n + b.index()] = i as u32;
            link_at[b.index() * n + a.index()] = i as u32;
        }
        let mut stub_at_node = vec![NONE_U32; n];
        for (i, &edge) in plan.edges().iter().enumerate() {
            if stub_at_node[edge.index()] == NONE_U32 {
                stub_at_node[edge.index()] = i as u32;
            }
        }
        let mut sim = Simulator {
            topo,
            routes,
            addrs,
            gateways: plan.gateways().to_vec(),
            devices: Vec::new(),
            arena: PacketArena::new(),
            stub_handler: vec![None; plan.edges().len()],
            ingress_handler: vec![None; n],
            stub_at_node,
            nearest_gw: vec![NONE_U32; n],
            link_at,
            queue: CalendarQueue::new(),
            now: SimTime::ZERO,
            stats: SimStats {
                delivered_per_stub: vec![0; addrs_len(plan)],
                link_load: vec![0; n_links],
                ..SimStats::default()
            },
            mtu: 1500,
            actions: Vec::new(),
            failed_links: Vec::new(),
            trace: None,
            trace_limit: 0,
            trace_dropped: 0,
            trace_pending: Vec::new(),
            tel: std::sync::Arc::new(sdm_telemetry::ShardTelemetry::new(false)),
            ecmp: EcmpMode::Disabled,
            frag_mode: FragmentationMode::CountOnly,
            frag_seq: 0,
            reassembly: FxHashMap::default(),
            service: Vec::new(),
            batch: batch_from_env(),
            scratch: Vec::new(),
            ready: Vec::new(),
        };
        sim.rebuild_gateway_table();
        sim
    }

    /// Recomputes the per-node nearest-gateway table from the current
    /// routing tables (the same `min` over `(distance, gateway)` the
    /// routing step used to evaluate per packet).
    fn rebuild_gateway_table(&mut self) {
        for node in 0..self.topo.node_count() {
            let best = self
                .gateways
                .iter()
                .copied()
                .filter_map(|g| self.routes.dist(NodeId::from_index(node), g).map(|d| (d, g)))
                .min();
            self.nearest_gw[node] = best.map_or(NONE_U32, |(_, g)| g.index() as u32);
        }
    }

    /// Gives a device a finite processing rate: each packet occupies it for
    /// `ticks_per_packet` ticks and later arrivals queue behind it (an
    /// M/D/1-style server). The default (0) models an infinitely fast
    /// device, appropriate for pure load accounting.
    ///
    /// # Panics
    ///
    /// Panics if `dev` is unknown.
    pub fn set_device_service_time(&mut self, dev: DeviceId, ticks_per_packet: u64) {
        assert!(dev.index() < self.devices.len(), "unknown device {dev}");
        self.service[dev.index()] = (ticks_per_packet, SimTime::ZERO);
    }

    /// Selects how over-MTU packets are treated.
    pub fn set_fragmentation(&mut self, mode: FragmentationMode) {
        self.frag_mode = mode;
    }

    /// Selects the router forwarding discipline for equal-cost paths.
    pub fn set_ecmp(&mut self, mode: EcmpMode) {
        self.ecmp = mode;
    }

    /// Fails a link: routing reconverges immediately (the OSPF reaction to
    /// a withdrawn link-state advertisement), so subsequent forwarding
    /// avoids it. Packets already queued re-route at their next hop.
    ///
    /// # Panics
    ///
    /// Panics if the link id is out of range.
    pub fn fail_link(&mut self, link: sdm_topology::LinkId) {
        assert!(link.index() < self.topo.link_count(), "unknown link");
        if !self.failed_links.contains(&link) {
            self.failed_links.push(link);
            self.routes = self.topo.routing_tables_excluding(&self.failed_links);
            self.rebuild_gateway_table();
        }
    }

    /// Restores a failed link and reconverges routing.
    pub fn restore_link(&mut self, link: sdm_topology::LinkId) {
        self.failed_links.retain(|&l| l != link);
        self.routes = self.topo.routing_tables_excluding(&self.failed_links);
        self.rebuild_gateway_table();
    }

    /// Links currently failed.
    pub fn failed_links(&self) -> &[sdm_topology::LinkId] {
        &self.failed_links
    }

    /// Enables packet tracing, keeping at most `limit` observations
    /// (router arrivals, device deliveries, terminal deliveries). Resets
    /// the [`Simulator::trace_dropped`] counter.
    pub fn enable_trace(&mut self, limit: usize) {
        self.trace = Some(Vec::new());
        self.trace_limit = limit;
        self.trace_dropped = 0;
    }

    /// The recorded trace (empty unless tracing was enabled).
    pub fn trace(&self) -> &[TraceEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// How many trace events were discarded because the trace already
    /// held `limit` observations — truncation is counted, never silent.
    pub fn trace_dropped(&self) -> u64 {
        self.trace_dropped
    }

    /// Installs the hot-path telemetry collector this simulator records
    /// into (shared with the devices' runtime via `Arc`). The default
    /// collector is disabled, which costs one predictable branch per
    /// record site.
    pub fn set_telemetry(&mut self, tel: std::sync::Arc<sdm_telemetry::ShardTelemetry>) {
        self.tel = tel;
    }

    fn record_trace(&mut self, at: SimTime, location: TraceLocation, flow: FiveTuple, weight: u64) {
        if let Some(tr) = &mut self.trace {
            if tr.len() < self.trace_limit {
                tr.push(TraceEvent {
                    at,
                    location,
                    flow,
                    weight,
                });
            } else {
                self.trace_dropped += 1;
            }
        }
    }

    /// Sets the uniform link MTU used for fragmentation accounting.
    pub fn set_mtu(&mut self, mtu: u32) {
        self.mtu = mtu;
    }

    /// The addressing plan in force.
    pub fn addresses(&self) -> &AddressPlan {
        &self.addrs
    }

    /// The routing tables routers forward by.
    pub fn routes(&self) -> &RoutingTables {
        &self.routes
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The packet arena (exposed for allocation accounting in tests: the
    /// forwarding fast path allocates exactly once per injected packet).
    pub fn arena(&self) -> &PacketArena {
        &self.arena
    }

    /// Attaches a device to a router and assigns it a unique address from
    /// `172.16.0.0/12`. Returns the device id and its address.
    ///
    /// # Panics
    ///
    /// Panics if `router` is not a node of this topology.
    pub fn attach(
        &mut self,
        router: NodeId,
        attachment: Attachment,
        device: Box<dyn Device>,
    ) -> (DeviceId, Ipv4Addr) {
        assert!(router.index() < self.topo.node_count(), "unknown router");
        let id = DeviceId(self.devices.len() as u32);
        let addr = Ipv4Addr(DEVICE_BASE + id.0 + 1);
        self.devices.push(DeviceSlot {
            device,
            router,
            addr,
            attachment,
        });
        self.stats.device_received.push(0);
        self.service.push((0, SimTime::ZERO));
        (id, addr)
    }

    /// The device owning an address, if any. Device addresses are assigned
    /// densely from `172.16.0.0/12` by [`Simulator::attach`], so this is
    /// pure arithmetic — no table lookup on the per-hop path.
    fn device_at(&self, a: Ipv4Addr) -> Option<DeviceId> {
        let off = a.0.wrapping_sub(DEVICE_BASE + 1);
        if (off as usize) < self.devices.len() {
            Some(DeviceId(off))
        } else {
            None
        }
    }

    /// Registers `dev` as the interceptor for traffic entering or leaving
    /// stub `stub` — the policy-proxy wiring of §III.A.
    ///
    /// # Panics
    ///
    /// Panics if `dev` is unknown or the stub already has a handler.
    pub fn set_stub_handler(&mut self, stub: StubId, dev: DeviceId) {
        assert!(dev.index() < self.devices.len(), "unknown device {dev}");
        let slot = &mut self.stub_handler[stub.index()];
        assert!(slot.is_none(), "stub {stub} already has a handler");
        *slot = Some(dev);
    }

    /// Injects an outbound packet originating in `stub` at the current time.
    /// If the stub has a proxy handler the packet is intercepted there;
    /// otherwise it enters at the stub's edge router.
    pub fn inject_from_stub(&mut self, stub: StubId, pkt: Packet) {
        self.inject_from_stub_at(stub, pkt, self.now);
    }

    /// Like [`Simulator::inject_from_stub`] but scheduled at a future time
    /// (used to stagger the packets of one flow so control-plane round
    /// trips can complete in between).
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the simulated past.
    pub fn inject_from_stub_at(&mut self, stub: StubId, mut pkt: Packet, at: SimTime) {
        assert!(at >= self.now, "cannot inject into the past");
        pkt.injected_at.get_or_insert(at.0);
        let weight = pkt.weight;
        let id = self.arena.alloc(pkt);
        match self.stub_handler[stub.index()] {
            Some(dev) => {
                let at = self.device_arrival_time(dev, at, weight);
                self.queue.push(at, EventKind::DeviceRecv { dev, pkt: id });
            }
            None => {
                let node = self.addrs.edge_router(stub);
                self.queue.push(at, EventKind::Arrive { node, pkt: id });
            }
        }
    }

    /// Registers `dev` as the ingress interceptor at `router`: traffic
    /// *injected* at that router (e.g. arriving from the Internet at a
    /// gateway) is handed to the device before it is routed — the gateway
    /// policy-proxy wiring of §III.A. Transit traffic through the router
    /// is not re-intercepted.
    ///
    /// # Panics
    ///
    /// Panics if `dev` is unknown or the router already has a handler.
    pub fn set_ingress_handler(&mut self, router: NodeId, dev: DeviceId) {
        assert!(dev.index() < self.devices.len(), "unknown device {dev}");
        let slot = &mut self.ingress_handler[router.index()];
        assert!(slot.is_none(), "router already has an ingress handler");
        *slot = Some(dev);
    }

    /// Injects a packet directly at a router (e.g. traffic arriving from
    /// the Internet at a gateway). If the router has an ingress handler,
    /// the packet is intercepted there first.
    pub fn inject_at_router(&mut self, node: NodeId, mut pkt: Packet) {
        pkt.injected_at.get_or_insert(self.now.0);
        let weight = pkt.weight;
        let id = self.arena.alloc(pkt);
        match self.ingress_handler[node.index()] {
            Some(dev) => {
                let at = self.device_arrival_time(dev, self.now, weight);
                self.queue.push(at, EventKind::DeviceRecv { dev, pkt: id });
            }
            None => self.queue.push(self.now, EventKind::Arrive { node, pkt: id }),
        }
    }

    /// The event-batch size of the vector execution path (see
    /// [`Simulator::set_batch_size`]).
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    /// Overrides the `SDM_BATCH` event-batch size for this simulator.
    /// `1` selects the legacy scalar loop; larger values drain up to that
    /// many same-tick events per batch and hand same-device runs to
    /// [`Device::receive_batch`]. Output is bit-identical either way.
    pub fn set_batch_size(&mut self, batch: usize) {
        self.batch = batch.max(1);
    }

    /// Runs until no events remain. Returns the number of events processed.
    ///
    /// With a batch size above 1 (see [`Simulator::set_batch_size`]) this
    /// takes the vector execution path; otherwise the scalar per-event
    /// loop. Tracing works on both paths and produces the identical
    /// ordered log: the vector path defers each run-mate's device-arrival
    /// record and flushes it just before that packet's delivery record
    /// (or at end of run), reproducing the scalar interleaving — pinned
    /// by `tests/batching_equivalence.rs`.
    pub fn run_until_idle(&mut self) -> u64 {
        if self.batch > 1 {
            return self.run_batched();
        }
        let mut n = 0;
        while self.step() {
            n += 1;
        }
        n
    }

    /// The vector execution loop: drains the calendar queue one same-tick
    /// batch at a time and dispatches consecutive same-device deliveries
    /// as one [`Device::receive_batch`] run.
    ///
    /// Equivalence to the scalar loop (pinned by
    /// `tests/batching_equivalence.rs`): the drain never crosses a tick
    /// boundary, so events still process in exactly the scalar pop order —
    /// anything a batch schedules at the *current* tick lands behind the
    /// batch in the bucket and is picked up by the next drain of the same
    /// tick. Within a device run, per-packet pre-accounting and the
    /// device's emissions keep their arrival order; buffered actions apply
    /// in emission order. The only divergence is that a run-mate's actions
    /// apply after the whole run's `receive` calls instead of interleaved,
    /// which can renumber arena slots — unobservable, since nothing keys
    /// off [`PacketId`] values.
    fn run_batched(&mut self) -> u64 {
        let mut n = 0u64;
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut ready = std::mem::take(&mut self.ready);
        loop {
            scratch.clear();
            let Some(at) = self.queue.pop_tick_batch(self.batch, &mut scratch) else {
                break;
            };
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            n += scratch.len() as u64;
            self.tel
                .observe_queue_occupancy((scratch.len() + self.queue.len()) as u64);
            let mut i = 0;
            while i < scratch.len() {
                match scratch[i] {
                    EventKind::Arrive { node, pkt } => {
                        if self.trace.is_some() {
                            let p = self.arena.get(pkt);
                            let (flow, w) = (p.original, p.weight);
                            self.record_trace(self.now, TraceLocation::Router(node), flow, w);
                        }
                        self.route_step(node, pkt);
                        i += 1;
                    }
                    EventKind::Timer { dev, key } => {
                        self.dispatch_device(dev, None, Some(key));
                        i += 1;
                    }
                    EventKind::DeviceRecv { dev, pkt } => {
                        // Extend the run of consecutive deliveries to `dev`.
                        ready.clear();
                        self.predispatch(dev, pkt, &mut ready);
                        i += 1;
                        while i < scratch.len() {
                            let EventKind::DeviceRecv { dev: d, pkt: p } = scratch[i] else {
                                break;
                            };
                            if d != dev {
                                break;
                            }
                            self.predispatch(dev, p, &mut ready);
                            i += 1;
                        }
                        if !ready.is_empty() {
                            self.tel.observe_run_length(ready.len() as u64);
                            self.dispatch_device_batch(dev, &ready);
                        }
                    }
                }
            }
        }
        self.scratch = scratch;
        self.ready = ready;
        n
    }

    /// The per-event bookkeeping of the scalar `DeviceRecv` arm
    /// (reassembly, receive counters), pushing the ready packet onto the
    /// current run. Fragments still waiting for their siblings push
    /// nothing.
    fn predispatch(&mut self, dev: DeviceId, pkt: PacketId, ready: &mut Vec<PacketId>) {
        let Some(pkt) = self.maybe_reassemble(pkt) else {
            return; // fragment buffered, waiting for the rest
        };
        let (weight, is_control) = {
            let p = self.arena.get(pkt);
            (p.weight, matches!(p.kind, PacketKind::LabelReady(_)))
        };
        self.stats.device_received[dev.index()] += weight;
        if is_control {
            self.stats.control_received += weight;
        }
        if self.trace.is_some() {
            let flow = self.arena.get(pkt).original;
            self.trace_pending.push((pkt, dev, flow, weight));
        }
        ready.push(pkt);
    }

    /// Emits deferred device-arrival trace records of the current batched
    /// run. With `upto = Some(p)` — called when the run delivers `p`
    /// locally — everything up to and including `p`'s own arrival record
    /// is emitted first, so the Delivered record lands right behind it,
    /// exactly as the scalar loop interleaves them. `None` flushes the
    /// remainder at end of run. A delivered packet that was never part of
    /// the run (a device-fabricated packet; no in-tree device does this)
    /// flushes nothing. No-op outside a traced batched run: the pending
    /// list is only ever filled by [`Simulator::predispatch`] with
    /// tracing on.
    fn flush_pending_traces(&mut self, upto: Option<PacketId>) {
        if self.trace_pending.is_empty() {
            return;
        }
        let end = match upto {
            Some(p) => match self.trace_pending.iter().position(|&(id, ..)| id == p) {
                Some(i) => i + 1,
                None => return,
            },
            None => self.trace_pending.len(),
        };
        let mut pending = std::mem::take(&mut self.trace_pending);
        for &(_, dev, flow, w) in &pending[..end] {
            self.record_trace(self.now, TraceLocation::Device(dev), flow, w);
        }
        pending.drain(..end);
        self.trace_pending = pending;
    }

    /// Processes a single event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((at, kind)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        match kind {
            EventKind::Arrive { node, pkt } => {
                if self.trace.is_some() {
                    let p = self.arena.get(pkt);
                    let (flow, w) = (p.original, p.weight);
                    self.record_trace(self.now, TraceLocation::Router(node), flow, w);
                }
                self.route_step(node, pkt);
            }
            EventKind::DeviceRecv { dev, pkt } => {
                let Some(pkt) = self.maybe_reassemble(pkt) else {
                    return true; // fragment buffered, waiting for the rest
                };
                let (flow, weight, is_control) = {
                    let p = self.arena.get(pkt);
                    (
                        p.original,
                        p.weight,
                        matches!(p.kind, PacketKind::LabelReady(_)),
                    )
                };
                self.stats.device_received[dev.index()] += weight;
                if is_control {
                    self.stats.control_received += weight;
                }
                self.record_trace(self.now, TraceLocation::Device(dev), flow, weight);
                self.dispatch_device(dev, Some(pkt), None);
            }
            EventKind::Timer { dev, key } => {
                self.dispatch_device(dev, None, Some(key));
            }
        }
        true
    }

    fn dispatch_device(&mut self, dev: DeviceId, pkt: Option<PacketId>, timer: Option<u64>) {
        let mut actions = std::mem::take(&mut self.actions);
        let slot = &mut self.devices[dev.index()];
        let router = slot.router;
        let attachment = slot.attachment;
        let mut ctx = DeviceCtx {
            now: self.now,
            dev,
            addr: slot.addr,
            router,
            arena: &mut self.arena,
            actions: &mut actions,
        };
        if let Some(p) = pkt {
            slot.device.receive(&mut ctx, p);
        }
        if let Some(k) = timer {
            slot.device.on_timer(&mut ctx, k);
        }
        self.apply_actions(dev, router, attachment, &mut actions);
        self.actions = actions;
    }

    /// Vector-path sibling of [`Simulator::dispatch_device`]: hands a whole
    /// same-tick run to the device in one callback, then applies the
    /// buffered actions in emission order.
    fn dispatch_device_batch(&mut self, dev: DeviceId, pkts: &[PacketId]) {
        let mut actions = std::mem::take(&mut self.actions);
        let slot = &mut self.devices[dev.index()];
        let router = slot.router;
        let attachment = slot.attachment;
        let mut ctx = DeviceCtx {
            now: self.now,
            dev,
            addr: slot.addr,
            router,
            arena: &mut self.arena,
            actions: &mut actions,
        };
        slot.device.receive_batch(&mut ctx, pkts);
        self.apply_actions(dev, router, attachment, &mut actions);
        self.actions = actions;
        self.flush_pending_traces(None);
    }

    /// Applies the actions a device buffered during a callback, in
    /// emission order.
    fn apply_actions(
        &mut self,
        dev: DeviceId,
        router: NodeId,
        attachment: Attachment,
        actions: &mut Vec<Action>,
    ) {
        for action in actions.drain(..) {
            match action {
                Action::Forward(p) => {
                    let mut at = self.now;
                    if attachment == Attachment::OffPath {
                        self.stats.device_link_hops += self.arena.get(p).weight;
                        at = at.after(1);
                    }
                    self.queue.push(at, EventKind::Arrive { node: router, pkt: p });
                }
                Action::DeliverLocal(p) => match self.stub_at_node[router.index()] {
                    NONE_U32 => {
                        self.stats.unroutable += self.arena.get(p).weight;
                        self.arena.free(p);
                    }
                    stub => {
                        self.flush_pending_traces(Some(p));
                        self.record_delivery(StubId(stub), p);
                    }
                },
                Action::SetTimer { delay, key } => {
                    let at = self.now.after(delay);
                    self.queue.push(at, EventKind::Timer { dev, key });
                }
            }
        }
    }

    /// One routing step at `node` for the packet, per the outermost
    /// destination.
    fn route_step(&mut self, node: NodeId, id: PacketId) {
        let dst = self.arena.get(id).current_dst();

        // Destination owned by a device?
        if let Some(dev) = self.device_at(dst) {
            let target_router = self.devices[dev.index()].router;
            if node == target_router {
                let weight = self.arena.get(id).weight;
                let at = self.device_arrival_time(dev, self.now, weight);
                self.queue.push(at, EventKind::DeviceRecv { dev, pkt: id });
                return;
            }
            self.forward_towards(node, target_router, id);
            return;
        }

        // Destination inside a stub network?
        if let Some(stub) = self.addrs.stub_of(dst) {
            let edge = self.addrs.edge_router(stub);
            if node == edge {
                match self.stub_handler[stub.index()] {
                    Some(dev) => {
                        let weight = self.arena.get(id).weight;
                        let at = self.device_arrival_time(dev, self.now, weight);
                        self.queue.push(at, EventKind::DeviceRecv { dev, pkt: id });
                    }
                    None => {
                        if let Some(whole) = self.maybe_reassemble(id) {
                            self.record_delivery(stub, whole);
                        }
                    }
                }
                return;
            }
            self.forward_towards(node, edge, id);
            return;
        }

        // External destination: leave through the nearest gateway.
        if self.topo.kind(node) == NodeKind::Gateway {
            if let Some(whole) = self.maybe_reassemble(id) {
                let (flow, weight) = {
                    let p = self.arena.get(whole);
                    (p.original, p.weight)
                };
                self.stats.delivered_external += weight;
                self.record_latency(whole);
                self.record_trace(self.now, TraceLocation::External(node), flow, weight);
                self.arena.free(whole);
            }
            return;
        }
        match self.nearest_gw[node.index()] {
            NONE_U32 => {
                self.stats.unroutable += self.arena.get(id).weight;
                self.arena.free(id);
            }
            g => self.forward_towards(node, NodeId::from_index(g as usize), id),
        }
    }

    fn forward_towards(&mut self, node: NodeId, target: NodeId, id: PacketId) {
        let Some(nh) = self.pick_next_hop(node, target, id) else {
            self.stats.unroutable += self.arena.get(id).weight;
            self.arena.free(id);
            return;
        };
        // TTL on the header routers actually forward on.
        let expired = {
            let hdr = self.arena.get_mut(id).outermost_mut();
            if hdr.ttl == 0 {
                true
            } else {
                hdr.ttl -= 1;
                false
            }
        };
        if expired {
            self.stats.dropped_ttl += self.arena.get(id).weight;
            self.arena.free(id);
            return;
        }

        let (weight, wire, payload, encap, frag) = {
            let p = self.arena.get(id);
            (
                p.weight,
                p.wire_len(),
                p.payload_len,
                p.is_encapsulated(),
                p.frag,
            )
        };
        // A fragment's own struct carries one header; the rest of its wire
        // footprint (the parent's tunnel stack / source route) lives in the
        // split's FragState.
        let (wire, encap) = match frag {
            Some(info) => match self.reassembly.get(&info.id) {
                Some(st) => (wire + st.extra_hdr, st.tunneled),
                None => (wire, encap),
            },
            None => (wire, encap),
        };

        self.stats.link_hops += weight;
        if let Some(link) = self.link_between(node, nh) {
            self.stats.link_load[link] += weight;
        }
        if encap {
            self.stats.encapsulated_hops += weight;
        }
        // Every byte beyond the bare packet (tunnel headers, pending
        // source-route segments) is steering overhead on this link.
        let extra = (wire - payload - IP_HEADER_LEN) as u64;
        if extra > 0 {
            self.stats.extra_header_bytes += weight * extra;
        }
        if wire > self.mtu {
            self.stats.frag_events += weight;
            if self.try_fragment(id, nh) {
                return;
            }
        }
        let at = self.now.after(1);
        self.queue.push(at, EventKind::Arrive { node: nh, pkt: id });
    }

    fn link_between(&self, a: NodeId, b: NodeId) -> Option<usize> {
        let n = self.topo.node_count();
        match self.link_at[a.index() * n + b.index()] {
            NONE_U32 => None,
            i => Some(i as usize),
        }
    }

    /// The next hop for the packet from `node` towards `target`: the
    /// deterministic table entry, or under ECMP a flow-hash pick among all
    /// equal-cost next hops.
    fn pick_next_hop(&self, node: NodeId, target: NodeId, id: PacketId) -> Option<NodeId> {
        match self.ecmp {
            EcmpMode::Disabled => self.routes.next_hop(node, target),
            EcmpMode::FlowHash => {
                let total = self.routes.dist(node, target)?;
                let mut candidates: Vec<NodeId> = Vec::new();
                for (v, c) in self.topo.neighbors(node) {
                    if let Some(li) = self.link_between(node, v) {
                        if self.failed_links.iter().any(|l| l.index() == li) {
                            continue;
                        }
                    }
                    if let Some(rest) = self.routes.dist(v, target) {
                        if rest.saturating_add(c) == total {
                            candidates.push(v);
                        }
                    }
                }
                if candidates.is_empty() {
                    return self.routes.next_hop(node, target);
                }
                // flow-sticky pick, decorrelated per router
                let mut z = self
                    .arena
                    .get(id)
                    .original
                    .stable_hash()
                    .wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(node.index() as u64 + 1));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                Some(candidates[(z % candidates.len() as u64) as usize])
            }
        }
    }

    /// Consumes a fragment into its split's reassembly state; returns the
    /// parked parent once complete, `None` while fragments are outstanding.
    /// Non-fragments pass straight through.
    fn maybe_reassemble(&mut self, id: PacketId) -> Option<PacketId> {
        let Some(info) = self.arena.get(id).frag else {
            return Some(id);
        };
        let (frag_ttl, frag_payload) = {
            let p = self.arena.get(id);
            (p.inner.ttl, p.payload_len)
        };
        self.arena.free(id);
        let st = self.reassembly.get_mut(&info.id)?; // unknown split: drop
        if !st.received[info.index as usize] {
            st.received[info.index as usize] = true;
            st.payload += frag_payload;
            if st.first_ttl.is_none() {
                st.first_ttl = Some(frag_ttl);
            }
        }
        if st.received.iter().all(|&r| r) {
            // lint:allow(hot-path-panic) — entry was checked present above
            let st = self.reassembly.remove(&info.id).expect("just present");
            self.stats.reassembly_events += 1;
            // lint:allow(hot-path-panic) — set by the fragment that filled the map
            let ttl = st.first_ttl.expect("at least one fragment received");
            let whole = st.parent;
            let p = self.arena.get_mut(whole);
            p.payload_len = st.payload;
            p.outermost_mut().ttl = ttl;
            p.frag = None;
            Some(whole)
        } else {
            None
        }
    }

    /// Splits an over-MTU packet into fragments that each fit the MTU and
    /// schedules them towards `nh`; the parent parks in the arena until
    /// reassembly. Returns false when emulation does not apply (aggregates,
    /// control packets, already-fragmented packets) — the caller then
    /// forwards the packet whole.
    fn try_fragment(&mut self, id: PacketId, nh: NodeId) -> bool {
        let (weight, wire, payload, kind_data, already_frag) = {
            let p = self.arena.get(id);
            (
                p.weight,
                p.wire_len(),
                p.payload_len,
                matches!(p.kind, PacketKind::Data),
                p.frag.is_some(),
            )
        };
        if self.frag_mode != FragmentationMode::Emulate || weight != 1 || already_frag || !kind_data
        {
            return false;
        }
        let headers = wire - payload;
        let Some(chunk) = self.mtu.checked_sub(headers) else {
            return false;
        };
        let chunk = chunk.max(8);
        let count = payload.div_ceil(chunk).max(1);
        if count <= 1 || count > u16::MAX as u32 {
            return false;
        }
        self.frag_seq += 1;
        let split_id = self.frag_seq;
        self.reassembly.insert(
            split_id,
            FragState {
                parent: id,
                received: vec![false; count as usize],
                payload: 0,
                first_ttl: None,
                extra_hdr: headers - IP_HEADER_LEN,
                tunneled: self.arena.get(id).is_encapsulated(),
            },
        );
        let at = self.now.after(1);
        let mut remaining = payload;
        for index in 0..count {
            let flen = remaining.min(chunk);
            remaining -= flen;
            let frag = self.arena.get(id).fragment_of(
                FragInfo {
                    id: split_id,
                    index: index as u16,
                    count: count as u16,
                },
                flen,
            );
            let fid = self.arena.alloc(frag);
            self.queue.push(at, EventKind::Arrive { node: nh, pkt: fid });
        }
        self.stats.fragments_created += count as u64;
        true
    }

    fn record_delivery(&mut self, stub: StubId, id: PacketId) {
        let (flow, weight) = {
            let p = self.arena.get(id);
            (p.original, p.weight)
        };
        self.stats.delivered += weight;
        self.stats.delivered_per_stub[stub.index()] += weight;
        self.record_latency(id);
        self.record_trace(self.now, TraceLocation::Delivered(stub), flow, weight);
        self.arena.free(id);
    }

    fn record_latency(&mut self, id: PacketId) {
        let p = self.arena.get(id);
        if let Some(t0) = p.injected_at {
            let weight = p.weight;
            let lat = self.now.0.saturating_sub(t0);
            self.stats.latency_total += lat * weight;
            self.stats.latency_max = self.stats.latency_max.max(lat);
        }
    }

    fn device_arrival_time(&mut self, dev: DeviceId, base: SimTime, weight: u64) -> SimTime {
        let arrival = match self.devices[dev.index()].attachment {
            Attachment::InPath => base,
            Attachment::OffPath => {
                // one access-link traversal in (weight accounted on receive)
                base.after(1)
            }
        };
        self.enqueue_at_device(dev, arrival, weight)
    }

    /// Applies the device's service-time queue: returns when the packet
    /// actually gets processed and advances the busy horizon.
    fn enqueue_at_device(&mut self, dev: DeviceId, arrival: SimTime, weight: u64) -> SimTime {
        let (ticks, busy_until) = self.service[dev.index()];
        if ticks == 0 {
            return arrival;
        }
        let start = arrival.max(busy_until);
        let wait = start.0 - arrival.0;
        self.stats.device_wait_total += wait * weight;
        self.stats.device_wait_max = self.stats.device_wait_max.max(wait);
        self.service[dev.index()].1 = start.after(ticks * weight);
        start
    }
}

fn addrs_len(plan: &NetworkPlan) -> usize {
    plan.edges().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FiveTuple, Protocol};
    use sdm_topology::campus::campus;

    #[test]
    fn sim_stats_merge_sums_counters_and_maxes_maxima() {
        let mut a = SimStats {
            delivered: 10,
            delivered_per_stub: vec![4, 6],
            device_received: vec![1, 2, 3],
            link_hops: 100,
            link_load: vec![50, 50],
            device_wait_max: 7,
            latency_max: 40,
            latency_total: 400,
            ..Default::default()
        };
        let b = SimStats {
            delivered: 5,
            delivered_per_stub: vec![5, 0],
            device_received: vec![0, 1, 0],
            link_hops: 30,
            link_load: vec![10, 20],
            device_wait_max: 3,
            latency_max: 90,
            latency_total: 100,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.delivered, 15);
        assert_eq!(a.delivered_per_stub, vec![9, 6]);
        assert_eq!(a.device_received, vec![1, 3, 3]);
        assert_eq!(a.link_hops, 130);
        assert_eq!(a.link_load, vec![60, 70]);
        assert_eq!(a.device_wait_max, 7, "max, not sum");
        assert_eq!(a.latency_max, 90);
        assert_eq!(a.latency_total, 500);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn sim_stats_merge_rejects_mismatched_plans() {
        let mut a = SimStats {
            device_received: vec![0, 0],
            ..Default::default()
        };
        let b = SimStats {
            device_received: vec![0],
            ..Default::default()
        };
        a.merge(&b);
    }

    fn flow(sim: &Simulator, from: StubId, to: StubId) -> FiveTuple {
        FiveTuple {
            src: sim.addresses().host(from, 0),
            dst: sim.addresses().host(to, 0),
            src_port: 4321,
            dst_port: 80,
            proto: Protocol::Tcp,
        }
    }

    #[test]
    fn plain_delivery_between_stubs() {
        let plan = campus(1);
        let mut sim = Simulator::new(&plan);
        let ft = flow(&sim, StubId(0), StubId(3));
        sim.inject_from_stub(StubId(0), Packet::data(ft, 500));
        sim.run_until_idle();
        assert_eq!(sim.stats().delivered, 1);
        assert_eq!(sim.stats().delivered_per_stub[3], 1);
        assert!(sim.stats().link_hops >= 2);
        assert_eq!(sim.stats().frag_events, 0);
    }

    #[test]
    fn weighted_packets_count_fully() {
        let plan = campus(1);
        let mut sim = Simulator::new(&plan);
        let ft = flow(&sim, StubId(0), StubId(3));
        sim.inject_from_stub(StubId(0), Packet::with_weight(ft, 500, 1000));
        sim.run_until_idle();
        assert_eq!(sim.stats().delivered, 1000);
    }

    #[test]
    fn external_traffic_leaves_via_gateway() {
        let plan = campus(1);
        let mut sim = Simulator::new(&plan);
        let mut ft = flow(&sim, StubId(0), StubId(1));
        ft.dst = "93.184.216.34".parse().unwrap(); // external
        sim.inject_from_stub(StubId(0), Packet::data(ft, 100));
        sim.run_until_idle();
        assert_eq!(sim.stats().delivered_external, 1);
        assert_eq!(sim.stats().delivered, 0);
    }

    /// One arena allocation per injected packet: the plain forwarding path
    /// must never clone packets, however many hops they take.
    #[test]
    fn forwarding_allocates_once_per_packet() {
        let plan = campus(1);
        let mut sim = Simulator::new(&plan);
        for i in 0..50u32 {
            let ft = FiveTuple {
                src: sim.addresses().host(StubId(i % 10), i),
                dst: sim.addresses().host(StubId((i + 3) % 10), i),
                src_port: 1000 + i as u16,
                dst_port: 80,
                proto: Protocol::Tcp,
            };
            sim.inject_from_stub(StubId(i % 10), Packet::data(ft, 900));
        }
        sim.run_until_idle();
        assert_eq!(sim.stats().delivered, 50);
        assert!(sim.stats().link_hops >= 100, "packets crossed the core");
        assert_eq!(
            sim.arena().allocations(),
            50,
            "forwarding must not allocate beyond the injection"
        );
        assert_eq!(sim.arena().in_use(), 0, "all slots freed on delivery");
    }

    /// A device that tunnels every packet to a peer device, which
    /// decapsulates and forwards to the real destination.
    struct TunnelEntry {
        peer: Ipv4Addr,
    }
    impl Device for TunnelEntry {
        fn receive(&mut self, ctx: &mut DeviceCtx<'_>, pkt: PacketId) {
            let (entry, peer) = (ctx.addr(), self.peer);
            ctx.pkt_mut(pkt).encapsulate(entry, peer);
            ctx.forward(pkt);
        }
    }
    struct TunnelExit;
    impl Device for TunnelExit {
        fn receive(&mut self, ctx: &mut DeviceCtx<'_>, pkt: PacketId) {
            ctx.pkt_mut(pkt).decapsulate();
            ctx.forward(pkt);
        }
    }

    #[test]
    fn tunneling_through_devices_delivers_and_counts() {
        let plan = campus(2);
        let mut sim = Simulator::new(&plan);
        let exit_router = plan.cores()[5];
        let (_exit_id, exit_addr) =
            sim.attach(exit_router, Attachment::InPath, Box::new(TunnelExit));
        let (entry_id, _) = sim.attach(
            plan.edges()[0],
            Attachment::InPath,
            Box::new(TunnelEntry { peer: exit_addr }),
        );
        sim.set_stub_handler(StubId(0), entry_id);

        let ft = flow(&sim, StubId(0), StubId(4));
        sim.inject_from_stub(StubId(0), Packet::data(ft, 800));
        sim.run_until_idle();
        assert_eq!(sim.stats().delivered, 1);
        assert!(sim.stats().encapsulated_hops > 0);
        assert!(sim.stats().extra_header_bytes > 0);
        assert_eq!(sim.stats().device_received[0], 1);
        assert_eq!(sim.stats().device_received[1], 1);
    }

    #[test]
    fn off_path_attachment_costs_access_hops() {
        let plan = campus(2);
        let mut sim = Simulator::new(&plan);
        let exit_router = plan.cores()[5];
        let (_exit, exit_addr) =
            sim.attach(exit_router, Attachment::OffPath, Box::new(TunnelExit));
        let (entry_id, _) = sim.attach(
            plan.edges()[0],
            Attachment::OffPath,
            Box::new(TunnelEntry { peer: exit_addr }),
        );
        sim.set_stub_handler(StubId(0), entry_id);
        let ft = flow(&sim, StubId(0), StubId(4));
        sim.inject_from_stub(StubId(0), Packet::data(ft, 800));
        sim.run_until_idle();
        assert_eq!(sim.stats().delivered, 1);
        assert!(sim.stats().device_link_hops >= 2);
    }

    #[test]
    fn fragmentation_counted_when_encapsulation_exceeds_mtu() {
        let plan = campus(2);
        let mut sim = Simulator::new(&plan);
        let exit_router = plan.cores()[5];
        let (_exit, exit_addr) =
            sim.attach(exit_router, Attachment::InPath, Box::new(TunnelExit));
        let (entry_id, _) = sim.attach(
            plan.edges()[0],
            Attachment::InPath,
            Box::new(TunnelEntry { peer: exit_addr }),
        );
        sim.set_stub_handler(StubId(0), entry_id);
        let ft = flow(&sim, StubId(0), StubId(4));
        // 1470 payload + 20 inner = 1490 fits MTU 1500; +20 tunnel = 1510 doesn't.
        sim.inject_from_stub(StubId(0), Packet::data(ft, 1470));
        sim.run_until_idle();
        assert_eq!(sim.stats().delivered, 1);
        assert!(sim.stats().frag_events > 0);
        // fragmentation happened only on encapsulated hops
        assert!(sim.stats().frag_events <= sim.stats().encapsulated_hops);
    }

    #[test]
    fn ttl_expiry_drops() {
        let plan = campus(1);
        let mut sim = Simulator::new(&plan);
        let mut pkt = Packet::data(flow(&sim, StubId(0), StubId(5)), 100);
        pkt.inner.ttl = 1; // not enough for edge->core->...->edge
        sim.inject_from_stub(StubId(0), pkt);
        sim.run_until_idle();
        assert_eq!(sim.stats().delivered, 0);
        assert_eq!(sim.stats().dropped_ttl, 1);
    }

    struct TimerDevice {
        fired: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }
    impl Device for TimerDevice {
        fn receive(&mut self, ctx: &mut DeviceCtx<'_>, pkt: PacketId) {
            ctx.drop_pkt(pkt);
            ctx.set_timer(10, 42);
        }
        fn on_timer(&mut self, _ctx: &mut DeviceCtx<'_>, key: u64) {
            self.fired
                .store(key, std::sync::atomic::Ordering::SeqCst);
        }
    }

    #[test]
    fn timers_fire_after_delay() {
        let plan = campus(1);
        let mut sim = Simulator::new(&plan);
        let fired = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let (dev, _) = sim.attach(
            plan.edges()[0],
            Attachment::InPath,
            Box::new(TimerDevice { fired: fired.clone() }),
        );
        sim.set_stub_handler(StubId(0), dev);
        let ft = flow(&sim, StubId(0), StubId(1));
        sim.inject_from_stub(StubId(0), Packet::data(ft, 10));
        sim.run_until_idle();
        assert_eq!(fired.load(std::sync::atomic::Ordering::SeqCst), 42);
        assert!(sim.now() >= SimTime(10));
    }

    #[test]
    fn unroutable_without_gateway_is_counted() {
        // Waxman plans have no gateways; external traffic is unroutable.
        let plan = sdm_topology::waxman::waxman_with(
            &sdm_topology::waxman::WaxmanConfig {
                cores: 4,
                edges: 8,
                ..Default::default()
            },
            3,
        );
        let mut sim = Simulator::new(&plan);
        let mut ft = flow(&sim, StubId(0), StubId(1));
        ft.dst = "8.8.8.8".parse().unwrap();
        sim.inject_from_stub(StubId(0), Packet::data(ft, 100));
        sim.run_until_idle();
        assert_eq!(sim.stats().unroutable, 1);
    }

    #[test]
    fn event_order_is_time_then_fifo() {
        let plan = campus(1);
        let mut sim = Simulator::new(&plan);
        let ft1 = flow(&sim, StubId(0), StubId(1));
        let ft2 = flow(&sim, StubId(2), StubId(1));
        sim.inject_from_stub(StubId(0), Packet::data(ft1, 10));
        sim.inject_from_stub(StubId(2), Packet::data(ft2, 10));
        let events = sim.run_until_idle();
        assert!(events >= 4);
        assert_eq!(sim.stats().delivered, 2);
    }

    #[test]
    fn control_packets_counted() {
        struct Sink;
        impl Device for Sink {
            fn receive(&mut self, ctx: &mut DeviceCtx<'_>, pkt: PacketId) {
                ctx.drop_pkt(pkt);
            }
        }
        let plan = campus(1);
        let mut sim = Simulator::new(&plan);
        let (_, addr) = sim.attach(plan.cores()[0], Attachment::InPath, Box::new(Sink));
        let ft = flow(&sim, StubId(0), StubId(1));
        let ctrl = Packet::control("172.16.0.99".parse().unwrap(), addr, ft);
        sim.inject_at_router(plan.edges()[0], ctrl);
        sim.run_until_idle();
        assert_eq!(sim.stats().control_received, 1);
    }

    #[test]
    fn trace_truncation_is_counted() {
        let plan = campus(1);
        let mut sim = Simulator::new(&plan);
        sim.enable_trace(3);
        for i in 0..10u32 {
            let ft = FiveTuple {
                src: sim.addresses().host(StubId(i % 10), i),
                dst: sim.addresses().host(StubId((i + 3) % 10), i),
                src_port: 1000 + i as u16,
                dst_port: 80,
                proto: Protocol::Tcp,
            };
            sim.inject_from_stub(StubId(i % 10), Packet::data(ft, 100));
        }
        sim.run_until_idle();
        assert_eq!(sim.trace().len(), 3, "trace capped at its limit");
        assert!(
            sim.trace_dropped() > 0,
            "events past the limit must be counted, not silently dropped"
        );
        // re-arming the trace resets the drop counter
        sim.enable_trace(1_000_000);
        assert_eq!(sim.trace_dropped(), 0);
    }

    /// The vector path emits the identical ordered trace log as the
    /// scalar loop (the cross-device property test lives in
    /// `tests/batching_equivalence.rs`; this pins the bare engine).
    #[test]
    fn batched_trace_equals_scalar_trace() {
        let run = |batch: usize| {
            let plan = campus(1);
            let mut sim = Simulator::new(&plan);
            sim.set_batch_size(batch);
            sim.enable_trace(100_000);
            for i in 0..40u32 {
                let ft = FiveTuple {
                    src: sim.addresses().host(StubId(i % 10), i),
                    dst: sim.addresses().host(StubId((i + 3) % 10), i),
                    src_port: 1000 + i as u16,
                    dst_port: 80,
                    proto: Protocol::Tcp,
                };
                sim.inject_from_stub(StubId(i % 10), Packet::data(ft, 900));
            }
            sim.run_until_idle();
            (sim.trace().to_vec(), sim.trace_dropped())
        };
        let (scalar, scalar_dropped) = run(1);
        let (batched, batched_dropped) = run(256);
        assert!(!scalar.is_empty());
        assert_eq!(scalar, batched, "trace logs must be identical");
        assert_eq!(scalar_dropped, batched_dropped);
    }

    #[test]
    fn telemetry_records_vector_path_histograms() {
        let plan = campus(1);
        let mut sim = Simulator::new(&plan);
        sim.set_batch_size(256);
        let tel = std::sync::Arc::new(sdm_telemetry::ShardTelemetry::new(true));
        sim.set_telemetry(tel.clone());
        let ft = flow(&sim, StubId(0), StubId(3));
        sim.inject_from_stub(StubId(0), Packet::data(ft, 500));
        sim.run_until_idle();
        let mut snap = sdm_telemetry::Snapshot::new();
        tel.export_into(&mut snap);
        assert!(
            snap.value(sdm_telemetry::family::QUEUE_OCCUPANCY, 0) > 0,
            "every drained tick batch observes queue occupancy"
        );
    }
}
