//! IPv4-style addressing: addresses, prefixes, and the deterministic
//! addressing plan that assigns one stub subnet per edge router.

use std::fmt;
use std::str::FromStr;

use sdm_topology::{NetworkPlan, NodeId};

/// An IPv4 address, stored as a host-order `u32`.
///
/// # Example
///
/// ```
/// use sdm_netsim::Ipv4Addr;
/// let a: Ipv4Addr = "10.1.2.3".parse().unwrap();
/// assert_eq!(a.octets(), [10, 1, 2, 3]);
/// assert_eq!(a.to_string(), "10.1.2.3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// Builds an address from four octets.
    pub fn from_octets(o: [u8; 4]) -> Self {
        Ipv4Addr(u32::from_be_bytes(o))
    }

    /// The four octets of the address, most significant first.
    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// Error parsing an [`Ipv4Addr`] or [`Prefix`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAddrError(String);

impl fmt::Display for ParseAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address syntax: {}", self.0)
    }
}

impl std::error::Error for ParseAddrError {}

impl FromStr for Ipv4Addr {
    type Err = ParseAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('.');
        let mut octets = [0u8; 4];
        for o in &mut octets {
            *o = parts
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| ParseAddrError(s.to_string()))?;
        }
        if parts.next().is_some() {
            return Err(ParseAddrError(s.to_string()));
        }
        Ok(Ipv4Addr::from_octets(octets))
    }
}

/// A CIDR prefix, e.g. `10.3.0.0/20`.
///
/// A prefix with length 0 matches every address (the wildcard `*` of the
/// paper's policy tables).
///
/// # Example
///
/// ```
/// use sdm_netsim::{Ipv4Addr, Prefix};
/// let p: Prefix = "10.3.0.0/16".parse().unwrap();
/// assert!(p.contains("10.3.200.1".parse().unwrap()));
/// assert!(!p.contains("10.4.0.1".parse().unwrap()));
/// assert!(Prefix::ANY.contains(Ipv4Addr(0xdeadbeef)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix {
    addr: Ipv4Addr,
    len: u8,
}

impl Prefix {
    /// The wildcard prefix `0.0.0.0/0`, matching every address.
    pub const ANY: Prefix = Prefix {
        addr: Ipv4Addr(0),
        len: 0,
    };

    /// Creates a prefix, masking `addr` down to `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        Prefix {
            addr: Ipv4Addr(addr.0 & Self::mask(len)),
            len,
        }
    }

    /// A /32 prefix matching exactly one address.
    pub fn host(addr: Ipv4Addr) -> Self {
        Prefix::new(addr, 32)
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The (masked) network address.
    pub fn addr(self) -> Ipv4Addr {
        self.addr
    }

    /// The prefix length in bits. (`is_empty` would be meaningless for a
    /// prefix — length 0 is the full wildcard, see [`Prefix::is_any`].)
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> u8 {
        self.len
    }

    /// Whether this is the full wildcard (length 0).
    pub fn is_any(self) -> bool {
        self.len == 0
    }

    /// True if `a` falls inside this prefix.
    pub fn contains(self, a: Ipv4Addr) -> bool {
        (a.0 & Self::mask(self.len)) == self.addr.0
    }

    /// True if every address in `self` lies inside `other`.
    pub fn is_subset_of(self, other: Prefix) -> bool {
        other.len <= self.len && other.contains(self.addr)
    }

    /// True if the two prefixes share at least one address.
    pub fn overlaps(self, other: Prefix) -> bool {
        let len = self.len.min(other.len);
        (self.addr.0 & Self::mask(len)) == (other.addr.0 & Self::mask(len))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for Prefix {
    type Err = ParseAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "*" {
            return Ok(Prefix::ANY);
        }
        let (a, l) = s.split_once('/').ok_or_else(|| ParseAddrError(s.to_string()))?;
        let addr: Ipv4Addr = a.parse()?;
        let len: u8 = l.parse().map_err(|_| ParseAddrError(s.to_string()))?;
        if len > 32 {
            return Err(ParseAddrError(s.to_string()));
        }
        Ok(Prefix::new(addr, len))
    }
}

/// Identifier of a stub network (one per edge router, dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StubId(pub u32);

impl StubId {
    /// Dense index of this stub.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StubId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Bits of subnet space each stub receives (a /20: 4094 hosts).
const SUBNET_SHIFT: u32 = 12;
/// Base of the stub address space: `10.0.0.0/8`.
const STUB_BASE: u32 = 10 << 24;
/// Maximum number of stubs the plan supports within `10.0.0.0/8`.
const MAX_STUBS: usize = 1 << (24 - SUBNET_SHIFT as usize);

/// The deterministic addressing plan of a generated network: one `/20` stub
/// subnet per edge router, carved out of `10.0.0.0/8` in edge-router order.
///
/// Mirrors the paper's "subnet a" style addressing (§II, Table I): policies
/// refer to stub networks by their address prefix.
///
/// # Example
///
/// ```
/// use sdm_netsim::{AddressPlan, StubId};
/// let plan = sdm_topology::campus::campus(1);
/// let addrs = AddressPlan::new(&plan);
/// let s0 = StubId(0);
/// let h = addrs.host(s0, 5);
/// assert_eq!(addrs.stub_of(h), Some(s0));
/// assert!(addrs.subnet(s0).contains(h));
/// ```
#[derive(Debug, Clone)]
pub struct AddressPlan {
    edge_routers: Vec<NodeId>,
}

impl AddressPlan {
    /// Builds the plan for a generated network: stub `i` sits behind
    /// `plan.edges()[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the network has more stubs than the `10.0.0.0/8` space
    /// supports (4096).
    pub fn new(plan: &NetworkPlan) -> Self {
        assert!(
            plan.edges().len() <= MAX_STUBS,
            "too many stub networks: {} > {MAX_STUBS}",
            plan.edges().len()
        );
        AddressPlan {
            edge_routers: plan.edges().to_vec(),
        }
    }

    /// The prefix covering the whole enterprise address space (all stub
    /// subnets live inside it) — the paper's "subnet a".
    pub fn enterprise_prefix(&self) -> Prefix {
        Prefix::new(Ipv4Addr(STUB_BASE), 8)
    }

    /// Number of stub networks.
    pub fn stub_count(&self) -> usize {
        self.edge_routers.len()
    }

    /// All stub ids.
    pub fn stubs(&self) -> impl Iterator<Item = StubId> + '_ {
        (0..self.edge_routers.len() as u32).map(StubId)
    }

    /// The address prefix of a stub network.
    ///
    /// # Panics
    ///
    /// Panics if `stub` is out of range.
    pub fn subnet(&self, stub: StubId) -> Prefix {
        assert!(stub.index() < self.edge_routers.len(), "unknown stub {stub}");
        Prefix::new(Ipv4Addr(STUB_BASE | (stub.0 << SUBNET_SHIFT)), 32 - SUBNET_SHIFT as u8)
    }

    /// The `host_index`-th host address inside a stub subnet.
    ///
    /// # Panics
    ///
    /// Panics if `stub` is out of range or `host_index` does not fit in the
    /// subnet.
    pub fn host(&self, stub: StubId, host_index: u32) -> Ipv4Addr {
        let p = self.subnet(stub);
        assert!(
            host_index < (1 << SUBNET_SHIFT) - 2,
            "host index {host_index} outside subnet"
        );
        Ipv4Addr(p.addr().0 + 1 + host_index)
    }

    /// The stub network an address belongs to, if any.
    pub fn stub_of(&self, a: Ipv4Addr) -> Option<StubId> {
        if (a.0 >> 24) != 10 {
            return None;
        }
        let idx = (a.0 & 0x00FF_FFFF) >> SUBNET_SHIFT;
        if (idx as usize) < self.edge_routers.len() {
            Some(StubId(idx))
        } else {
            None
        }
    }

    /// The edge router a stub network sits behind.
    ///
    /// # Panics
    ///
    /// Panics if `stub` is out of range.
    pub fn edge_router(&self, stub: StubId) -> NodeId {
        self.edge_routers[stub.index()]
    }

    /// The stub network attached to an edge router, if any.
    pub fn stub_at(&self, router: NodeId) -> Option<StubId> {
        self.edge_routers
            .iter()
            .position(|&r| r == router)
            .map(|i| StubId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdm_topology::campus::campus;
    use sdm_topology::waxman::waxman;

    #[test]
    fn addr_roundtrip_display_parse() {
        for s in ["0.0.0.0", "255.255.255.255", "10.20.30.40"] {
            let a: Ipv4Addr = s.parse().unwrap();
            assert_eq!(a.to_string(), s);
        }
    }

    #[test]
    fn addr_parse_rejects_garbage() {
        assert!("1.2.3".parse::<Ipv4Addr>().is_err());
        assert!("1.2.3.4.5".parse::<Ipv4Addr>().is_err());
        assert!("a.b.c.d".parse::<Ipv4Addr>().is_err());
        assert!("1.2.3.256".parse::<Ipv4Addr>().is_err());
    }

    #[test]
    fn prefix_contains_and_masks() {
        let p = Prefix::new("10.3.7.9".parse().unwrap(), 16);
        assert_eq!(p.addr().to_string(), "10.3.0.0");
        assert!(p.contains("10.3.255.255".parse().unwrap()));
        assert!(!p.contains("10.4.0.0".parse().unwrap()));
    }

    #[test]
    fn prefix_any_matches_everything() {
        assert!(Prefix::ANY.contains(Ipv4Addr(0)));
        assert!(Prefix::ANY.contains(Ipv4Addr(u32::MAX)));
        assert!(Prefix::ANY.is_any());
        assert_eq!("*".parse::<Prefix>().unwrap(), Prefix::ANY);
    }

    #[test]
    fn prefix_overlap() {
        let a: Prefix = "10.0.0.0/8".parse().unwrap();
        let b: Prefix = "10.3.0.0/16".parse().unwrap();
        let c: Prefix = "11.0.0.0/8".parse().unwrap();
        assert!(a.overlaps(b));
        assert!(b.overlaps(a));
        assert!(!a.overlaps(c));
        assert!(Prefix::ANY.overlaps(c));
    }

    #[test]
    fn prefix_parse_display_roundtrip() {
        let p: Prefix = "10.3.16.0/20".parse().unwrap();
        assert_eq!(p.to_string(), "10.3.16.0/20");
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
    }

    #[test]
    fn host_prefix_matches_exactly_one() {
        let a: Ipv4Addr = "10.0.0.7".parse().unwrap();
        let p = Prefix::host(a);
        assert!(p.contains(a));
        assert!(!p.contains(Ipv4Addr(a.0 + 1)));
    }

    #[test]
    fn plan_assigns_disjoint_subnets() {
        let plan = AddressPlan::new(&campus(1));
        for i in 0..plan.stub_count() {
            for j in 0..plan.stub_count() {
                if i != j {
                    let (a, b) = (plan.subnet(StubId(i as u32)), plan.subnet(StubId(j as u32)));
                    assert!(!a.overlaps(b), "{a} overlaps {b}");
                }
            }
        }
    }

    #[test]
    fn plan_host_lookup_roundtrip() {
        let plan = AddressPlan::new(&campus(1));
        for s in plan.stubs() {
            for h in [0u32, 1, 100, 4000] {
                let a = plan.host(s, h);
                assert_eq!(plan.stub_of(a), Some(s));
            }
        }
    }

    #[test]
    fn plan_scales_to_waxman() {
        let plan = AddressPlan::new(&waxman(1));
        assert_eq!(plan.stub_count(), 400);
        let last = StubId(399);
        let a = plan.host(last, 9);
        assert_eq!(plan.stub_of(a), Some(last));
    }

    #[test]
    fn plan_edge_router_roundtrip() {
        let net = campus(1);
        let plan = AddressPlan::new(&net);
        for s in plan.stubs() {
            let r = plan.edge_router(s);
            assert_eq!(plan.stub_at(r), Some(s));
        }
        // a core router hosts no stub
        assert_eq!(plan.stub_at(net.cores()[0]), None);
    }

    #[test]
    fn non_stub_addr_maps_to_none() {
        let plan = AddressPlan::new(&campus(1));
        assert_eq!(plan.stub_of("172.16.0.1".parse().unwrap()), None);
        // inside 10/8 but beyond the allocated stub range
        assert_eq!(plan.stub_of("10.255.255.1".parse().unwrap()), None);
    }
}
