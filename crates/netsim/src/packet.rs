//! Packets: IPv4-style headers, flow identifiers, IP-over-IP encapsulation
//! and the steering label of §III.E.
//!
//! Invariants the rest of the simulator leans on:
//!
//! * the encapsulation stack is strictly LIFO — [`Packet::encapsulate`]
//!   pushes an outer header, [`Packet::decapsulate`] pops it, and
//!   [`Packet::current_dst`] always reads the outermost header;
//! * [`Packet::five_tuple`] is the *inner* (original) flow identity, no
//!   matter how many tunnel layers are stacked on top — flow stickiness
//!   and shard/batch grouping key on it;
//! * `weight` is the packet multiplicity of an aggregate: every counter
//!   in the system adds `weight`, never `1`, so an aggregate of `w`
//!   packets is indistinguishable from `w` unit packets in all
//!   statistics.

use std::fmt;

use crate::addr::Ipv4Addr;

/// Size in bytes of one IPv4 header (no options); each IP-over-IP
/// encapsulation adds this much to the wire length of a packet.
pub const IP_HEADER_LEN: u32 = 20;

/// Transport protocol carried in the IP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Protocol {
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// IP-in-IP encapsulation (4), used for steering tunnels.
    IpInIp,
    /// Any other protocol number.
    Other(u8),
}

impl Protocol {
    /// The IANA protocol number.
    pub fn number(self) -> u8 {
        match self {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::IpInIp => 4,
            Protocol::Other(n) => n,
        }
    }
}

impl From<u8> for Protocol {
    fn from(n: u8) -> Self {
        match n {
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            4 => Protocol::IpInIp,
            other => Protocol::Other(other),
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => f.write_str("tcp"),
            Protocol::Udp => f.write_str("udp"),
            Protocol::IpInIp => f.write_str("ipip"),
            Protocol::Other(n) => write!(f, "proto{n}"),
        }
    }
}

/// The 5-element flow identifier the paper hashes for flow-sticky middlebox
/// selection and flow-cache lookups (§III.C–D): source address, destination
/// address, source port, destination port, protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FiveTuple {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: Protocol,
}

impl FiveTuple {
    /// A stable 64-bit hash of the flow identifier (FNV-1a), used to map a
    /// flow onto the cumulative weight vector `t_{e,p}(x, ·)`.
    ///
    /// The function is fixed (not `RandomState`) so that *every* proxy and
    /// middlebox maps the same flow to the same point in `[0, 1)`, which is
    /// what keeps per-flow paths stable across hops.
    pub fn stable_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        };
        for b in self.src.0.to_be_bytes() {
            eat(b);
        }
        for b in self.dst.0.to_be_bytes() {
            eat(b);
        }
        for b in self.src_port.to_be_bytes() {
            eat(b);
        }
        for b in self.dst_port.to_be_bytes() {
            eat(b);
        }
        eat(self.proto.number());
        h
    }

    /// The hash mapped into the unit interval `[0, 1)`.
    pub fn unit_hash(&self) -> f64 {
        (self.stable_hash() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} ({})",
            self.src, self.src_port, self.dst, self.dst_port, self.proto
        )
    }
}

/// An IPv4 header (the fields the system touches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Protocol of the payload.
    pub proto: Protocol,
    /// Time to live, decremented per router hop.
    pub ttl: u8,
}

/// Default TTL for generated packets.
pub const DEFAULT_TTL: u8 = 64;

/// The steering label of §III.E, carried in otherwise-unused header fields
/// (ToS byte + fragmentation offset), so inserting it never grows the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub u16);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Distinguishes ordinary data packets from the label-switching control
/// packet the last middlebox sends back to the proxy (§III.E).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// An ordinary data packet.
    Data,
    /// Control: "label path established for flow `f`" — carries the flow
    /// identifier so the proxy can flag its flow-table entry.
    LabelReady(FiveTuple),
}

/// A simulated packet.
///
/// A packet always carries its *inner* header (the original flow header,
/// possibly with a rewritten destination under label switching) and at most
/// a stack of *outer* tunnel headers added by IP-over-IP encapsulation.
///
/// `weight` supports the exact flow-aggregate fast path: one `Packet` can
/// represent `weight` identical packets of the same flow; every counter in
/// the simulator adds `weight` instead of 1. All steering decisions in the
/// system are per-flow (hash-based), so aggregation is lossless for load
/// accounting.
///
/// # Example
///
/// ```
/// use sdm_netsim::{Packet, FiveTuple, Protocol, Ipv4Addr};
/// let ft = FiveTuple {
///     src: "10.0.0.1".parse().unwrap(),
///     dst: "10.1.0.1".parse().unwrap(),
///     src_port: 4000, dst_port: 80, proto: Protocol::Tcp,
/// };
/// let mut p = Packet::data(ft, 1000);
/// assert_eq!(p.wire_len(), 1020);
/// p.encapsulate("172.16.0.1".parse().unwrap(), "172.16.0.2".parse().unwrap());
/// assert_eq!(p.wire_len(), 1040); // one extra IP header
/// assert_eq!(p.current_dst().to_string(), "172.16.0.2");
/// p.decapsulate().unwrap();
/// assert_eq!(p.current_dst(), ft.dst);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Inner (original) header. Label switching rewrites `inner.dst`.
    pub inner: Ipv4Header,
    /// Outer tunnel header stack; last element is outermost.
    outer: Vec<Ipv4Header>,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Steering label (§III.E), if inserted.
    pub label: Option<Label>,
    /// Transport payload length in bytes (excludes all IP headers).
    pub payload_len: u32,
    /// Number of identical packets this object represents (≥ 1).
    pub weight: u64,
    /// Data or control.
    pub kind: PacketKind,
    /// The original five-tuple at creation time; immutable bookkeeping used
    /// by measurements and tests even after label switching rewrites the
    /// inner destination.
    pub original: FiveTuple,
    /// Remaining strict source-route segments (the SR-style baseline of
    /// §V): each segment is the next address to visit, the last being the
    /// flow's true destination. Each pending segment costs
    /// [`SEGMENT_LEN`] bytes of header on the wire.
    source_route: Vec<Ipv4Addr>,
    /// Set when this packet is an emulated IP fragment.
    pub frag: Option<FragInfo>,
    /// When the packet entered the network (stamped by the inject calls);
    /// used for end-to-end latency accounting.
    pub injected_at: Option<SimTimeStamp>,
}

/// A newtype alias for injection timestamps (ticks), kept separate from
/// the engine's `SimTime` so the packet module stays engine-independent.
pub type SimTimeStamp = u64;

/// Wire cost in bytes of one pending source-route segment.
pub const SEGMENT_LEN: u32 = 4;

/// Fragment bookkeeping when the simulator emulates IP fragmentation
/// (rather than only counting MTU violations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragInfo {
    /// Identifier of the original packet (unique per split).
    pub id: u64,
    /// This fragment's index, 0-based.
    pub index: u16,
    /// Total number of fragments of the original packet.
    pub count: u16,
}

impl Packet {
    /// Creates a data packet for flow `ft` with the given payload length.
    pub fn data(ft: FiveTuple, payload_len: u32) -> Self {
        Packet::with_weight(ft, payload_len, 1)
    }

    /// Creates an aggregate data packet representing `weight` identical
    /// packets of flow `ft`.
    ///
    /// # Panics
    ///
    /// Panics if `weight == 0`.
    pub fn with_weight(ft: FiveTuple, payload_len: u32, weight: u64) -> Self {
        assert!(weight >= 1, "packet weight must be at least 1");
        Packet {
            inner: Ipv4Header {
                src: ft.src,
                dst: ft.dst,
                proto: ft.proto,
                ttl: DEFAULT_TTL,
            },
            outer: Vec::new(),
            src_port: ft.src_port,
            dst_port: ft.dst_port,
            label: None,
            payload_len,
            weight,
            kind: PacketKind::Data,
            original: ft,
            source_route: Vec::new(),
            frag: None,
            injected_at: None,
        }
    }

    /// Creates the label-switching control packet sent from the last
    /// middlebox back to the proxy (§III.E).
    pub fn control(src: Ipv4Addr, dst: Ipv4Addr, flow: FiveTuple) -> Self {
        Packet {
            inner: Ipv4Header {
                src,
                dst,
                proto: Protocol::Other(253),
                ttl: DEFAULT_TTL,
            },
            outer: Vec::new(),
            src_port: 0,
            dst_port: 0,
            label: None,
            payload_len: 16,
            weight: 1,
            kind: PacketKind::LabelReady(flow),
            original: flow,
            source_route: Vec::new(),
            frag: None,
            injected_at: None,
        }
    }

    /// Creates one emulated IP fragment of this packet carrying
    /// `payload_len` payload bytes.
    ///
    /// The fragment is deliberately lightweight: it carries only the header
    /// routers currently forward on (the outermost one) and allocates
    /// nothing — the parent keeps its tunnel stack and source route, and
    /// the engine accounts the parent's extra header bytes per fragment
    /// separately. Fragments always have weight 1 (aggregates are never
    /// fragmented).
    pub fn fragment_of(&self, info: FragInfo, payload_len: u32) -> Packet {
        Packet {
            inner: *self.outermost(),
            outer: Vec::new(),
            src_port: self.src_port,
            dst_port: self.dst_port,
            label: None,
            payload_len,
            weight: 1,
            kind: PacketKind::Data,
            original: self.original,
            source_route: Vec::new(),
            frag: Some(info),
            injected_at: self.injected_at,
        }
    }

    /// The flow identifier as seen in the *current inner* header (after any
    /// label-switching rewrite of the destination).
    pub fn five_tuple(&self) -> FiveTuple {
        FiveTuple {
            src: self.inner.src,
            dst: self.inner.dst,
            src_port: self.src_port,
            dst_port: self.dst_port,
            proto: self.inner.proto,
        }
    }

    /// Pushes an IP-over-IP tunnel header with the given endpoints.
    ///
    /// Mirrors §III.B: "the proxy adds a new IP header on top of the
    /// original one".
    pub fn encapsulate(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        self.outer.push(Ipv4Header {
            src,
            dst,
            proto: Protocol::IpInIp,
            ttl: DEFAULT_TTL,
        });
    }

    /// Pops the outermost tunnel header, returning it.
    ///
    /// Returns `None` when the packet is not encapsulated.
    pub fn decapsulate(&mut self) -> Option<Ipv4Header> {
        self.outer.pop()
    }

    /// Whether the packet currently carries a tunnel header.
    pub fn is_encapsulated(&self) -> bool {
        !self.outer.is_empty()
    }

    /// Number of tunnel headers currently on the packet.
    pub fn tunnel_depth(&self) -> usize {
        self.outer.len()
    }

    /// The outermost header (the one routers act on).
    pub fn outermost(&self) -> &Ipv4Header {
        self.outer.last().unwrap_or(&self.inner)
    }

    /// Mutable access to the outermost header.
    pub fn outermost_mut(&mut self) -> &mut Ipv4Header {
        self.outer.last_mut().unwrap_or(&mut self.inner)
    }

    /// The destination address routers currently forward on.
    pub fn current_dst(&self) -> Ipv4Addr {
        self.outermost().dst
    }

    /// The source address of the outermost header.
    pub fn current_src(&self) -> Ipv4Addr {
        self.outermost().src
    }

    /// Total on-the-wire length: payload plus one IP header per
    /// encapsulation level plus the inner header plus any pending
    /// source-route segments.
    pub fn wire_len(&self) -> u32 {
        self.payload_len
            + IP_HEADER_LEN * (1 + self.outer.len() as u32)
            + SEGMENT_LEN * self.source_route.len() as u32
    }

    /// Installs a strict source route: the packet will visit each segment
    /// in order, the last being the true destination. The current
    /// destination is set to the first segment.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty.
    pub fn set_source_route(&mut self, segments: Vec<Ipv4Addr>) {
        assert!(!segments.is_empty(), "a source route needs at least one segment");
        let mut rest = segments;
        let first = rest.remove(0);
        self.inner.dst = first;
        self.source_route = rest;
    }

    /// Advances the source route: rewrites the destination to the next
    /// pending segment and drops it from the header. Returns false when no
    /// segments remain.
    pub fn advance_source_route(&mut self) -> bool {
        if self.source_route.is_empty() {
            return false;
        }
        let next = self.source_route.remove(0);
        self.inner.dst = next;
        true
    }

    /// Whether the packet still carries source-route segments.
    pub fn has_source_route(&self) -> bool {
        !self.source_route.is_empty()
    }

    /// The pending source-route segments (next first).
    pub fn source_route(&self) -> &[Ipv4Addr] {
        &self.source_route
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pkt[{}{}{} len={} w={}]",
            self.five_tuple(),
            if self.is_encapsulated() { " tunneled" } else { "" },
            match self.label {
                Some(l) => format!(" {l}"),
                None => String::new(),
            },
            self.wire_len(),
            self.weight,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft() -> FiveTuple {
        FiveTuple {
            src: "10.0.0.1".parse().unwrap(),
            dst: "10.1.0.9".parse().unwrap(),
            src_port: 1234,
            dst_port: 80,
            proto: Protocol::Tcp,
        }
    }

    #[test]
    fn wire_len_counts_headers() {
        let mut p = Packet::data(ft(), 100);
        assert_eq!(p.wire_len(), 120);
        p.encapsulate(Ipv4Addr(1), Ipv4Addr(2));
        assert_eq!(p.wire_len(), 140);
        p.encapsulate(Ipv4Addr(3), Ipv4Addr(4));
        assert_eq!(p.wire_len(), 160);
        p.decapsulate();
        p.decapsulate();
        assert_eq!(p.wire_len(), 120);
        assert_eq!(p.decapsulate(), None);
    }

    #[test]
    fn encapsulation_changes_routed_dst_only() {
        let mut p = Packet::data(ft(), 100);
        p.encapsulate(Ipv4Addr(77), Ipv4Addr(88));
        assert_eq!(p.current_dst(), Ipv4Addr(88));
        assert_eq!(p.current_src(), Ipv4Addr(77));
        assert_eq!(p.five_tuple(), ft());
        assert_eq!(p.outermost().proto, Protocol::IpInIp);
    }

    #[test]
    fn stable_hash_is_deterministic_and_spreads() {
        let a = ft().stable_hash();
        assert_eq!(a, ft().stable_hash());
        let mut other = ft();
        other.src_port = 1235;
        assert_ne!(a, other.stable_hash());
        let u = ft().unit_hash();
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn unit_hash_is_roughly_uniform() {
        // bucket 10k distinct flows into 10 bins; each should get 600..1400
        let mut bins = [0u32; 10];
        for i in 0..10_000u32 {
            let t = FiveTuple {
                src: Ipv4Addr(0x0a000000 + i),
                dst: Ipv4Addr(0x0a010000),
                src_port: (i % 50_000) as u16,
                dst_port: 80,
                proto: Protocol::Tcp,
            };
            bins[(t.unit_hash() * 10.0) as usize] += 1;
        }
        for (i, &b) in bins.iter().enumerate() {
            assert!((600..1400).contains(&b), "bin {i} has {b}");
        }
    }

    #[test]
    fn weight_validation() {
        let p = Packet::with_weight(ft(), 10, 500);
        assert_eq!(p.weight, 500);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn zero_weight_rejected() {
        let _ = Packet::with_weight(ft(), 10, 0);
    }

    #[test]
    fn control_packet_carries_flow() {
        let c = Packet::control(Ipv4Addr(5), Ipv4Addr(6), ft());
        assert_eq!(c.kind, PacketKind::LabelReady(ft()));
        assert_eq!(c.current_dst(), Ipv4Addr(6));
        assert!(!c.is_encapsulated());
    }

    #[test]
    fn label_rewrite_keeps_original() {
        let mut p = Packet::data(ft(), 10);
        p.label = Some(Label(42));
        p.inner.dst = Ipv4Addr(999); // label switching rewrites dst
        assert_eq!(p.original, ft());
        assert_ne!(p.five_tuple(), ft());
    }

    #[test]
    fn protocol_numbers_roundtrip() {
        for n in [0u8, 4, 6, 17, 200] {
            assert_eq!(Protocol::from(n).number(), n);
        }
    }

    #[test]
    fn source_route_advances_and_costs_header_bytes() {
        let mut p = Packet::data(ft(), 100);
        let base = p.wire_len();
        let final_dst = ft().dst;
        p.set_source_route(vec![Ipv4Addr(10), Ipv4Addr(20), final_dst]);
        // first segment becomes the routed destination, two remain in-header
        assert_eq!(p.current_dst(), Ipv4Addr(10));
        assert_eq!(p.wire_len(), base + 2 * SEGMENT_LEN);
        assert!(p.has_source_route());
        assert!(p.advance_source_route());
        assert_eq!(p.current_dst(), Ipv4Addr(20));
        assert_eq!(p.wire_len(), base + SEGMENT_LEN);
        assert!(p.advance_source_route());
        assert_eq!(p.current_dst(), final_dst);
        assert_eq!(p.wire_len(), base);
        assert!(!p.advance_source_route());
        assert!(!p.has_source_route());
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_source_route_rejected() {
        let mut p = Packet::data(ft(), 100);
        p.set_source_route(Vec::new());
    }

    #[test]
    fn display_forms() {
        let p = Packet::data(ft(), 10);
        let s = p.to_string();
        assert!(s.contains("10.0.0.1:1234"));
        assert!(Label(7).to_string() == "L7");
    }
}
