//! Integration tests at the Waxman topology's scale (400 stub networks):
//! the full pipeline, label switching, companion return-traffic policies,
//! and statistical balance of the random strategy.

use sdm::core::{EnforcementOptions, LbOptions, SteeringEncoding, Strategy};
use sdm::netsim::SimTime;
use sdm::policy::NetworkFunction;
use sdm::workload::{PolicyClass, PolicyClassCounts, WorkloadConfig};
use sdm_bench::{ExperimentConfig, World};

fn small_waxman() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::waxman(5);
    cfg.policy_counts = PolicyClassCounts {
        many_to_one: 5,
        one_to_many: 5,
        one_to_one: 5,
        companions: false,
    };
    cfg
}

/// Label switching behaves identically at 400-stub scale.
#[test]
fn waxman_label_switching_equivalence() {
    let world = World::build(&small_waxman());
    let flows = sdm_workload::generate_flows(
        &world.generated,
        world.controller.addr_plan(),
        &WorkloadConfig {
            flows: 60,
            seed: 9,
            ..Default::default()
        },
    );
    let mut outcomes = Vec::new();
    for encoding in [SteeringEncoding::IpOverIp, SteeringEncoding::LabelSwitching] {
        let mut enf = world.controller.enforcement(
            Strategy::HotPotato,
            None,
            EnforcementOptions {
                encoding,
                ..Default::default()
            },
        );
        for (i, f) in flows.iter().enumerate() {
            enf.inject_flow_packets(f.five_tuple, f.packets.min(8), 300, SimTime(i as u64), 400);
        }
        enf.run();
        outcomes.push((
            enf.sim().stats().delivered + enf.sim().stats().delivered_external,
            enf.middlebox_loads(),
        ));
    }
    assert_eq!(outcomes[0], outcomes[1]);
}

/// Companion return-traffic policies enforce the reversed chain
/// WP → IDS → FW end-to-end at scale.
#[test]
fn companion_policies_enforce_reversed_chain() {
    let mut cfg = small_waxman();
    cfg.policy_counts.companions = true;
    let world = World::build(&cfg);
    // generated classes now include companions in the flow rotation
    let flows = sdm_workload::generate_flows(
        &world.generated,
        world.controller.addr_plan(),
        &WorkloadConfig {
            flows: 400,
            seed: 4,
            ..Default::default()
        },
    );
    let companion_flows: Vec<_> = flows
        .iter()
        .filter(|f| world.generated.endpoints(f.policy).class == PolicyClass::Companion)
        .collect();
    assert!(!companion_flows.is_empty(), "companion flows generated");

    let mut enf = world
        .controller
        .enforcement(Strategy::HotPotato, None, EnforcementOptions::default());
    let mut total = 0;
    for f in &companion_flows {
        enf.inject_flow(f.five_tuple, f.packets, 300);
        total += f.packets;
    }
    enf.run();
    assert_eq!(enf.sim().stats().delivered, total);
    // companions traverse WP, IDS and FW exactly once each
    let loads = enf.middlebox_loads();
    for f in [
        NetworkFunction::WebProxy,
        NetworkFunction::Ids,
        NetworkFunction::Firewall,
    ] {
        let sum: u64 = world
            .deployment
            .offering(f)
            .iter()
            .map(|m| loads[m.index()])
            .sum();
        assert_eq!(sum, total, "function {f}");
    }
    let tm_sum: u64 = world
        .deployment
        .offering(NetworkFunction::TrafficMonitor)
        .iter()
        .map(|m| loads[m.index()])
        .sum();
    assert_eq!(tm_sum, 0, "TM is not in the companion chain");
}

/// At Waxman scale the random strategy spreads load across *all* boxes of
/// the heavily replicated types (no box starves), while hot-potato
/// starves some — the Figure 5 contrast, asserted statistically.
#[test]
fn waxman_random_spreads_hot_potato_starves() {
    let world = World::build(&small_waxman());
    let flows = world.flows(120_000, 6);
    let hp = world.run_strategy(Strategy::HotPotato, None, &flows);
    let rand = world.run_strategy(Strategy::Random { salt: 11 }, None, &flows);
    let ids_boxes = world.deployment.offering(NetworkFunction::Ids);
    let hp_starved = ids_boxes.iter().filter(|m| hp.loads[m.index()] == 0).count();
    let rand_starved = rand.loads.iter().filter(|&&l| l == 0).count();
    assert!(
        rand_starved <= hp_starved,
        "random should starve no more boxes than hot-potato"
    );
    let rand_ids_min = ids_boxes.iter().map(|m| rand.loads[m.index()]).min().unwrap();
    assert!(rand_ids_min > 0, "every IDS sees traffic under random");
}

/// The whole measurement→LP→LB pipeline at Waxman scale respects the λ
/// the LP promised.
#[test]
fn waxman_lb_realizes_lambda() {
    let world = World::build(&small_waxman());
    let flows = world.flows(150_000, 8);
    let hp = world.run_strategy(Strategy::HotPotato, None, &flows);
    let (w, report) = world
        .controller
        .solve_load_balanced(&hp.measurements, LbOptions::default())
        .unwrap();
    let lb = world.run_strategy(Strategy::LoadBalanced, Some(w), &flows);
    let realized = lb.report.overall_max() as f64;
    assert!(
        realized <= report.lambda * 1.30,
        "realized {realized} vs lambda {}",
        report.lambda
    );
}
