//! Smoke tests of the `sdm` CLI binary: argument handling, policy files,
//! flow-trace save/replay.

use std::process::Command;

fn sdm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sdm"))
}

#[test]
fn help_prints_usage() {
    let out = sdm().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("--topology"));
}

#[test]
fn bad_arguments_fail_cleanly() {
    for args in [
        vec!["--topology", "torus"],
        vec!["--strategy", "magic"],
        vec!["--encoding", "pigeon"],
        vec!["--k", "0"],
        vec!["--policies", "/definitely/not/a/file"],
    ] {
        let out = sdm().args(&args).output().expect("binary runs");
        assert!(!out.status.success(), "{args:?} should fail");
        assert!(!out.stderr.is_empty(), "{args:?} should explain itself");
    }
}

#[test]
fn small_hp_run_reports_delivery() {
    let out = sdm()
        .args(["--strategy", "hp", "--packets", "20000"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("per-type loads"), "{text}");
    assert!(text.contains("delivered"), "{text}");
}

#[test]
fn policy_file_drives_enforcement_and_warns_on_shadowing() {
    let dir = std::env::temp_dir();
    let path = dir.join("sdm_cli_test_policies.txt");
    std::fs::write(
        &path,
        "dst=* dport=80 => FW, IDS\nsrc=10.0.0.0/8 dport=80 => IDS\n",
    )
    .unwrap();
    let out = sdm()
        .args(["--strategy", "hp", "--packets", "5000"])
        .arg("--policies")
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("shadowed"), "shadow warning expected: {err}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2 policies"), "{text}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn flow_trace_round_trip_via_cli() {
    let dir = std::env::temp_dir();
    let path = dir.join("sdm_cli_test_trace.txt");
    let out = sdm()
        .args(["--strategy", "hp", "--packets", "10000"])
        .arg("--save-flows")
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let saved = String::from_utf8_lossy(&out.stdout);
    assert!(saved.contains("saved"), "{saved}");

    let out = sdm()
        .args(["--strategy", "hp"])
        .arg("--load-flows")
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let replayed = String::from_utf8_lossy(&out.stdout);
    assert!(replayed.contains("replaying"), "{replayed}");
    let _ = std::fs::remove_file(&path);
}
