//! Property test for the telemetry subsystem (ISSUE 8 tentpole): the
//! invariant-family snapshot export is **byte-identical** across the two
//! execution axes — `SDM_SHARDS` (1 vs 4, merged in shard-index order)
//! and `SDM_BATCH` (scalar vs vector path) — on randomized deployments
//! and flow populations.
//!
//! Non-invariant families (queue-occupancy / run-length histograms,
//! pinned-replay counts) legitimately depend on the execution
//! configuration; the registry marks them and the default (`full =
//! false`) exports exclude them — the last test proves that exclusion is
//! load-bearing, not decorative.
//!
//! Shard counts and batch sizes are set programmatically (per-call
//! argument / `sim_mut().set_batch_size`), so the test is immune to env
//! races in a parallel test run; telemetry is forced on via
//! [`EnforcementOptions::telemetry`] for the same reason.

use sdm::core::{EnforcementOptions, Strategy as Steering};
use sdm::util::prop::{check, Config};
use sdm::util::prop_assert_eq;
use sdm::util::rng::StdRng;
use sdm_bench::{ExperimentConfig, World};
use sdm_workload::{to_flow_specs, WorkloadConfig};

#[test]
fn telemetry_snapshots_are_corner_invariant() {
    check(
        "telemetry_snapshots_are_corner_invariant",
        &Config::with_cases(4),
        |rng: &mut StdRng| {
            let seed = rng.gen_range(1u64..1000);
            let mbox_counts = [
                rng.gen_range(1usize..4),
                rng.gen_range(2usize..6),
                rng.gen_range(2usize..6),
                rng.gen_range(1usize..4),
            ];
            let packets = rng.gen_range(5_000u64..20_000);
            let flow_seed = rng.next_u64();
            (seed, mbox_counts, packets, flow_seed)
        },
        |&(seed, mbox_counts, packets, flow_seed)| {
            let cfg = ExperimentConfig {
                mbox_counts,
                ..ExperimentConfig::campus(seed)
            };
            let world = World::build(&cfg);
            let flows = sdm_workload::generate_flows_with_total(
                &world.generated,
                world.controller.addr_plan(),
                &WorkloadConfig {
                    seed: flow_seed,
                    ..Default::default()
                },
                packets,
            );
            let specs = to_flow_specs(&flows, 512);
            let options = EnforcementOptions {
                telemetry: Some(true),
                ..Default::default()
            };

            // Shard axis: the merged snapshot of a 4-shard run must export
            // the same invariant bytes as the single-shard run.
            let one =
                world
                    .controller
                    .run_sharded(Steering::HotPotato, None, options, &specs, 1);
            let four =
                world
                    .controller
                    .run_sharded(Steering::HotPotato, None, options, &specs, 4);
            prop_assert_eq!(
                &four.telemetry.to_json(false),
                &one.telemetry.to_json(false),
                "SDM_SHARDS 1 vs 4"
            );

            // Batch axis: scalar vs vector hot path on one enforcement.
            let run_batch = |batch: usize| {
                let mut enf = world
                    .controller
                    .enforcement(Steering::HotPotato, None, options);
                enf.sim_mut().set_batch_size(batch);
                for s in &specs {
                    enf.inject_flow(s.flow, s.packets, s.payload);
                }
                enf.run();
                enf.telemetry_snapshot()
            };
            prop_assert_eq!(
                &run_batch(256).to_json(false),
                &run_batch(1).to_json(false),
                "SDM_BATCH 1 vs 256"
            );
            Ok(())
        },
    );
}

/// The `full = true` export is *expected* to differ across the batch axis
/// (the vector path records queue-occupancy and run-length histograms the
/// scalar path never sees), which is exactly why the goldens and the
/// property above use the invariant-only export.
#[test]
fn full_export_depends_on_execution_config() {
    let world = World::build(&ExperimentConfig::campus(6));
    let flows = world.flows(10_000, 13);
    let specs = to_flow_specs(&flows, 512);
    let options = EnforcementOptions {
        telemetry: Some(true),
        ..Default::default()
    };
    let run_batch = |batch: usize| {
        let mut enf = world
            .controller
            .enforcement(Steering::HotPotato, None, options);
        enf.sim_mut().set_batch_size(batch);
        for s in &specs {
            enf.inject_flow(s.flow, s.packets, s.payload);
        }
        enf.run();
        enf.telemetry_snapshot()
    };
    let scalar = run_batch(1);
    let vector = run_batch(256);
    assert_eq!(
        scalar.to_json(false),
        vector.to_json(false),
        "invariant families must still agree"
    );
    assert_ne!(
        scalar.to_json(true),
        vector.to_json(true),
        "histogram families must expose the execution configuration"
    );
}
