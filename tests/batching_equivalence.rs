//! Property test for the vector (batched) hot path: running the same
//! deployment, strategy and flow population at batch size 1 (the scalar
//! legacy path), a small odd batch (3) and the default batch (256) is
//! **bit-identical** — simulator stats, middlebox loads, traffic
//! measurements, per-device counters and soft-state footprints — across
//! randomized deployments, strategies and steering encodings.
//!
//! Batch sizes are set per-`Enforcement` via `sim_mut().set_batch_size`
//! rather than through `SDM_BATCH`, so the test is immune to env races
//! in a parallel test run.

use sdm::core::{
    Controller, EnforcementOptions, FlowSpec, StateFootprint, Strategy as Steering,
    SteeringEncoding,
};
use sdm::netsim::SimStats;
use sdm::util::prop::{check, Config};
use sdm::util::prop_assert_eq;
use sdm::util::rng::StdRng;
use sdm_bench::{ExperimentConfig, World};
use sdm_workload::{to_flow_specs, WorkloadConfig};

/// Everything one run exposes, so two runs compare with one
/// `prop_assert_eq` per field.
struct Snapshot {
    stats: SimStats,
    loads: Vec<u64>,
    measurements: Vec<(sdm::netsim::StubId, sdm::core::DestKey, sdm::policy::PolicyId, f64)>,
    proxy_counters: Vec<sdm::core::ProxyCounters>,
    mbox_counters: Vec<sdm::core::MboxCounters>,
    footprint: StateFootprint,
}

fn run_with_batch(
    controller: &Controller,
    strategy: Steering,
    options: EnforcementOptions,
    specs: &[FlowSpec],
    batch: usize,
) -> Snapshot {
    let mut enf = controller.enforcement(strategy, None, options);
    enf.sim_mut().set_batch_size(batch);
    for s in specs {
        enf.inject_flow(s.flow, s.packets, s.payload);
    }
    enf.run();
    let mut footprint = StateFootprint::default();
    let mut proxy_counters = Vec::new();
    for stub in controller.addr_plan().stubs() {
        let st = enf.proxy_state(stub);
        let st = st.lock();
        proxy_counters.push(st.counters);
        footprint.proxy_flow_entries.push(st.flows.len() as u64);
        footprint.proxy_flow_stats.push(st.flows.stats());
        footprint.proxy_neg_evictions.push(st.flows.negative_evictions());
    }
    for g in 0..controller.plan().gateways().len() {
        let st = enf.ingress_state(g);
        let st = st.lock();
        footprint.ingress_flow_entries.push(st.flows.len() as u64);
        footprint.ingress_neg_evictions.push(st.flows.negative_evictions());
    }
    let mut mbox_counters = Vec::new();
    for (id, _) in controller.deployment().iter() {
        let st = enf.mbox_state(id);
        let st = st.lock();
        mbox_counters.push(st.counters);
        footprint.mbox_flow_entries.push(st.flows.len() as u64);
        footprint.mbox_label_entries.push(st.labels.len() as u64);
        footprint.mbox_flow_stats.push(st.flows.stats());
        footprint.mbox_neg_evictions.push(st.flows.negative_evictions());
    }
    Snapshot {
        stats: enf.sim().stats().clone(),
        loads: enf.middlebox_loads(),
        measurements: enf.measurements().iter().collect(),
        proxy_counters,
        mbox_counters,
        footprint,
    }
}

fn compare(scalar: &Snapshot, batched: &Snapshot, label: &str) -> Result<(), String> {
    prop_assert_eq!(&batched.stats, &scalar.stats, "{label}: sim stats");
    prop_assert_eq!(&batched.loads, &scalar.loads, "{label}: loads");
    prop_assert_eq!(
        &batched.measurements,
        &scalar.measurements,
        "{label}: traffic matrix"
    );
    prop_assert_eq!(
        &batched.proxy_counters,
        &scalar.proxy_counters,
        "{label}: proxy counters"
    );
    prop_assert_eq!(
        &batched.mbox_counters,
        &scalar.mbox_counters,
        "{label}: middlebox counters"
    );
    prop_assert_eq!(
        &batched.footprint,
        &scalar.footprint,
        "{label}: state footprint"
    );
    Ok(())
}

#[test]
fn batched_runs_are_bit_identical_to_scalar() {
    check(
        "batched_runs_are_bit_identical_to_scalar",
        &Config::with_cases(6),
        |rng: &mut StdRng| {
            let seed = rng.gen_range(1u64..1000);
            let mbox_counts = [
                rng.gen_range(1usize..4),
                rng.gen_range(2usize..6),
                rng.gen_range(2usize..6),
                rng.gen_range(1usize..4),
            ];
            let packets = rng.gen_range(5_000u64..30_000);
            let flow_seed = rng.next_u64();
            // mode packs (strategy, encoding): strategy = mode % 2
            // (HP / Random), encoding = mode / 2 (IpOverIp /
            // LabelSwitching / SourceRouting).
            let mode = rng.gen_range(0u8..6);
            let batch = rng.gen_range(2usize..32);
            (seed, mbox_counts, packets, flow_seed, mode, batch)
        },
        |&(seed, mbox_counts, packets, flow_seed, mode, batch)| {
            let cfg = ExperimentConfig {
                mbox_counts,
                ..ExperimentConfig::campus(seed)
            };
            let world = World::build(&cfg);
            let flows = sdm_workload::generate_flows_with_total(
                &world.generated,
                world.controller.addr_plan(),
                &WorkloadConfig {
                    seed: flow_seed,
                    ..Default::default()
                },
                packets,
            );
            let specs = to_flow_specs(&flows, 512);
            let strategy = match mode % 2 {
                0 => Steering::HotPotato,
                _ => Steering::Random { salt: flow_seed },
            };
            let options = EnforcementOptions {
                encoding: match mode / 2 {
                    0 => SteeringEncoding::IpOverIp,
                    1 => SteeringEncoding::LabelSwitching,
                    _ => SteeringEncoding::SourceRouting,
                },
                ..Default::default()
            };

            let scalar = run_with_batch(&world.controller, strategy, options, &specs, 1);
            let small = run_with_batch(&world.controller, strategy, options, &specs, batch);
            let big = run_with_batch(&world.controller, strategy, options, &specs, 256);
            compare(&scalar, &small, &format!("batch {batch} vs scalar"))?;
            compare(&scalar, &big, "batch 256 vs scalar")?;
            Ok(())
        },
    );
}

/// Mid-experiment middlebox failure and restore: `dropped_failed`
/// accounting (and every other counter) must be identical between the
/// scalar and the vector path. Pins the PR-7 run-invalidation fix — a
/// failure observed inside a batch ends the cached tunnel/label runs, so
/// packets after a flip never resume a pre-failure decision.
#[test]
fn failure_accounting_is_batch_invariant() {
    let world = World::build(&ExperimentConfig::campus(5));
    let flows = world.flows(20_000, 7);
    let specs = to_flow_specs(&flows, 512);

    let run = |batch: usize| {
        let mut enf = world.controller.enforcement(
            Steering::HotPotato,
            None,
            EnforcementOptions::default(),
        );
        enf.sim_mut().set_batch_size(batch);
        let (healthy, rest) = specs.split_at(specs.len() / 2);
        for s in healthy {
            enf.inject_flow(s.flow, s.packets, s.payload);
        }
        enf.run();
        // Fail the busiest box mid-experiment (loads are deterministic,
        // so every batch size picks the same victim): flows steered
        // towards it must blackhole there, counted in dropped_failed.
        let loads = enf.middlebox_loads();
        let busiest = loads
            .iter()
            .enumerate()
            .max_by_key(|&(_, l)| l)
            .map(|(i, _)| i)
            .unwrap();
        let victim = world
            .controller
            .deployment()
            .iter()
            .nth(busiest)
            .unwrap()
            .0;
        enf.fail_middlebox(victim);
        for s in rest {
            enf.inject_flow(s.flow, s.packets, s.payload);
        }
        enf.run();
        // Restore and replay: post-restore traffic must flow again.
        enf.restore_middlebox(victim);
        for s in rest {
            enf.inject_flow(s.flow, s.packets, s.payload);
        }
        enf.run();
        let mut counters = Vec::new();
        for (id, _) in world.controller.deployment().iter() {
            counters.push(enf.mbox_state(id).lock().counters);
        }
        (enf.sim().stats().clone(), enf.middlebox_loads(), counters)
    };

    let (stats1, loads1, counters1) = run(1);
    let (stats256, loads256, counters256) = run(256);
    let dropped: u64 = counters1.iter().map(|c| c.dropped_failed).sum();
    assert!(dropped > 0, "scenario must actually exercise the failed path");
    assert_eq!(stats1, stats256, "sim stats");
    assert_eq!(loads1, loads256, "middlebox loads");
    assert_eq!(counters1, counters256, "middlebox counters incl. dropped_failed");
}

/// The per-packet trace log is batch-size invariant: the vector path
/// defers each run-mate's device-arrival record and flushes it just
/// before that packet's delivery record, reproducing the scalar
/// interleaving exactly (PR-8; previously tracing forced the scalar
/// path). Compared event-for-event at batch 1 vs 3 vs 256, and again
/// under truncation to check the overflow counter.
#[test]
fn packet_traces_are_batch_invariant() {
    let world = World::build(&ExperimentConfig::campus(4));
    let flows = world.flows(3_000, 9);
    let specs = to_flow_specs(&flows, 512);

    let run = |batch: usize, limit: usize| {
        let mut enf = world.controller.enforcement(
            Steering::HotPotato,
            None,
            EnforcementOptions::default(),
        );
        enf.sim_mut().set_batch_size(batch);
        enf.sim_mut().enable_trace(limit);
        for s in &specs {
            enf.inject_flow(s.flow, s.packets, s.payload);
        }
        enf.run();
        (enf.sim().trace().to_vec(), enf.sim().trace_dropped())
    };

    let (scalar, scalar_dropped) = run(1, 1_000_000);
    assert!(!scalar.is_empty(), "scenario must produce trace events");
    assert_eq!(scalar_dropped, 0, "limit must not truncate the full log");
    for batch in [3usize, 256] {
        let (batched, dropped) = run(batch, 1_000_000);
        assert_eq!(batched.len(), scalar.len(), "batch {batch}: trace length");
        assert_eq!(batched, scalar, "batch {batch}: per-packet trace order");
        assert_eq!(dropped, 0, "batch {batch}: no truncation");
    }

    // Truncated logs agree too: the same prefix survives and the same
    // number of events overflows, because the emission order is equal.
    let limit = scalar.len() / 2;
    let (s_trunc, s_drop) = run(1, limit);
    let (b_trunc, b_drop) = run(256, limit);
    assert_eq!(s_trunc.len(), limit);
    assert_eq!(s_trunc, b_trunc, "truncated trace prefix");
    assert_eq!(s_drop, b_drop, "overflow count");
    assert!(s_drop > 0, "truncation must actually occur");
}

/// The full figure pipeline (LP-weighted load balancing included) is
/// batch-size invariant: the exact configuration Figures 4–5 and
/// Table III run, compared scalar vs default batch.
#[test]
fn lb_pipeline_is_batch_invariant() {
    let world = World::build(&ExperimentConfig::campus(3));
    let flows = world.flows(40_000, 11);
    let specs = to_flow_specs(&flows, 512);
    for strategy in [Steering::HotPotato, Steering::Random { salt: 11 }] {
        let scalar = run_with_batch(
            &world.controller,
            strategy,
            EnforcementOptions::default(),
            &specs,
            1,
        );
        let batched = run_with_batch(
            &world.controller,
            strategy,
            EnforcementOptions::default(),
            &specs,
            256,
        );
        assert_eq!(scalar.stats, batched.stats);
        assert_eq!(scalar.loads, batched.loads);
        assert_eq!(scalar.measurements, batched.measurements);
    }
}
