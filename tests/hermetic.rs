//! Guard test for the hermetic build policy: every `[dependencies]`,
//! `[dev-dependencies]` and `[build-dependencies]` entry in every manifest
//! of the workspace must be an in-tree path dependency (or a
//! `workspace = true` inheritance of one). A registry dependency sneaking
//! in breaks `--offline` builds, so it fails this test *before* it breaks
//! CI boxes without a crates.io mirror.

use std::path::{Path, PathBuf};

/// All Cargo.toml files of the workspace: the root manifest plus every
/// `crates/*/Cargo.toml`.
fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    let entries = std::fs::read_dir(&crates)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", crates.display()));
    for entry in entries {
        let manifest = entry.expect("readable dir entry").path().join("Cargo.toml");
        if manifest.is_file() {
            out.push(manifest);
        }
    }
    assert!(out.len() >= 8, "expected the root + >=7 crate manifests");
    out
}

/// Minimal TOML-section walk: yields `(section, line)` for every
/// non-comment line, where `section` is the current `[...]` header.
fn walk_sections(text: &str) -> Vec<(String, String)> {
    let mut section = String::new();
    let mut out = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            continue;
        }
        out.push((section.clone(), line.to_string()));
    }
    out
}

fn is_dependency_section(section: &str) -> bool {
    section == "dependencies"
        || section == "dev-dependencies"
        || section == "build-dependencies"
        || section == "workspace.dependencies"
        || section.starts_with("target.") && section.ends_with("dependencies")
}

/// A dependency line is hermetic when it resolves in-tree: a `path = ...`
/// table or `workspace = true` inheritance (the workspace table itself is
/// checked for `path` too). Anything else — bare versions, `git = ...`,
/// registry tables — is a violation.
fn line_is_hermetic(line: &str) -> bool {
    let Some((name, spec)) = line.split_once('=') else {
        return false;
    };
    let (name, spec) = (name.trim(), spec.trim());
    // dotted-key inheritance: `foo.workspace = true`
    if name.ends_with(".workspace") && spec == "true" {
        return true;
    }
    // inline-table inheritance: `foo = { workspace = true }`
    if spec.contains("workspace = true") {
        return true;
    }
    // in-tree path table: `foo = { path = "..." }` with no registry escape
    spec.contains("path") && !spec.contains("git =") && !spec.contains("version")
}

#[test]
fn no_registry_dependencies_anywhere() {
    let mut violations = Vec::new();
    for manifest in workspace_manifests() {
        let text = std::fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", manifest.display()));
        for (section, line) in walk_sections(&text) {
            if !is_dependency_section(&section) {
                continue;
            }
            if !line_is_hermetic(&line) {
                violations.push(format!("{} [{section}]: {line}", manifest.display()));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "non-hermetic dependencies found (use an in-tree path dep instead):\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn all_path_dependencies_point_in_tree() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .canonicalize()
        .expect("workspace root resolves");
    for manifest in workspace_manifests() {
        let dir = manifest.parent().unwrap();
        let text = std::fs::read_to_string(&manifest).unwrap();
        for (section, line) in walk_sections(&text) {
            if !is_dependency_section(&section) {
                continue;
            }
            // extract path = "..." if present
            let Some(idx) = line.find("path") else { continue };
            let rest = &line[idx..];
            let Some(start) = rest.find('"') else { continue };
            let Some(end) = rest[start + 1..].find('"') else { continue };
            let rel = &rest[start + 1..start + 1 + end];
            let target = dir
                .join(rel)
                .canonicalize()
                .unwrap_or_else(|e| panic!("{}: dangling path dep `{rel}`: {e}", manifest.display()));
            assert!(
                target.starts_with(&root),
                "{}: path dep `{rel}` escapes the workspace",
                manifest.display()
            );
        }
    }
}

/// The util crate itself must have no dependencies at all — it is the
/// foundation everything else stands on.
#[test]
fn util_crate_is_dependency_free() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/util/Cargo.toml");
    let text = std::fs::read_to_string(&manifest).unwrap();
    for (section, line) in walk_sections(&text) {
        assert!(
            !is_dependency_section(&section),
            "crates/util must stay dependency-free, found [{section}] {line}"
        );
    }
}
