//! Integration tests of the §III.E label-switching enhancement: exact
//! behavioural equivalence with IP-over-IP steering, fragmentation
//! avoidance, and soft-state edge cases.

use sdm::core::{EnforcementOptions, Strategy};
use sdm::netsim::SimTime;
use sdm_bench::{ExperimentConfig, World};
use sdm_workload::WorkloadConfig;

fn options(label_switching: bool) -> EnforcementOptions {
    EnforcementOptions {
        encoding: if label_switching {
            sdm::core::SteeringEncoding::LabelSwitching
        } else {
            sdm::core::SteeringEncoding::IpOverIp
        },
        ..Default::default()
    }
}

/// Same flows, packet-level, both modes: identical delivery and identical
/// per-middlebox loads (the steering decision is the same; only the
/// encoding differs).
#[test]
fn label_switching_is_load_equivalent_to_tunneling() {
    let world = World::build(&ExperimentConfig::campus(3));
    let flows = sdm_workload::generate_flows(
        &world.generated,
        world.controller.addr_plan(),
        &WorkloadConfig {
            flows: 80,
            seed: 5,
            ..Default::default()
        },
    );
    let mut results = Vec::new();
    for ls in [false, true] {
        let mut enf = world
            .controller
            .enforcement(Strategy::HotPotato, None, options(ls));
        for (i, f) in flows.iter().enumerate() {
            enf.inject_flow_packets(
                f.five_tuple,
                f.packets.min(20),
                800,
                SimTime(i as u64),
                150,
            );
        }
        enf.run();
        results.push((
            enf.sim().stats().delivered + enf.sim().stats().delivered_external,
            enf.middlebox_loads(),
            enf.sim().stats().encapsulated_hops,
            enf.sim().stats().frag_events,
        ));
    }
    let (d0, l0, enc0, _frag0) = &results[0];
    let (d1, l1, enc1, _frag1) = &results[1];
    assert_eq!(d0, d1, "delivery must match");
    assert_eq!(l0, l1, "middlebox loads must match");
    assert!(enc1 < enc0, "label mode must encapsulate less");
}

/// With near-MTU packets, tunnel mode fragments on every encapsulated hop;
/// label mode fragments only while setting up (first packet of each flow).
#[test]
fn fragmentation_only_during_setup_under_label_switching() {
    let world = World::build(&ExperimentConfig::campus(3));
    let flows = sdm_workload::generate_flows(
        &world.generated,
        world.controller.addr_plan(),
        &WorkloadConfig {
            flows: 30,
            seed: 5,
            ..Default::default()
        },
    );
    let mut frag = Vec::new();
    for ls in [false, true] {
        let mut enf = world
            .controller
            .enforcement(Strategy::HotPotato, None, options(ls));
        for (i, f) in flows.iter().enumerate() {
            // payload 1470: inner packet 1490 <= MTU, tunneled 1510 > MTU
            enf.inject_flow_packets(f.five_tuple, 10, 1470, SimTime(i as u64), 200);
        }
        enf.run();
        frag.push(enf.sim().stats().frag_events);
    }
    assert!(frag[0] > 0, "tunnel mode must fragment near-MTU packets");
    assert!(
        frag[1] * 5 <= frag[0],
        "label mode must avoid most fragmentation: {} vs {}",
        frag[1],
        frag[0]
    );
}

/// A flow-cache expiry mid-flow falls back to the slow path and re-tunnels
/// (a fresh label): traffic keeps flowing, nothing is lost.
#[test]
fn cache_expiry_mid_flow_recovers() {
    let world = World::build(&ExperimentConfig::campus(3));
    let mut opts = options(true);
    opts.flow_ttl = 500; // expires between widely spaced packets
    opts.label_ttl = 500;
    let mut enf = world
        .controller
        .enforcement(Strategy::HotPotato, None, opts);
    let flows = sdm_workload::generate_flows(
        &world.generated,
        world.controller.addr_plan(),
        &WorkloadConfig {
            flows: 1,
            seed: 5,
            ..Default::default()
        },
    );
    let ft = flows[0].five_tuple;
    // 10 packets spaced 2000 ticks apart: every packet finds its cache
    // entry expired and restarts flow setup
    enf.inject_flow_packets(ft, 10, 400, SimTime(0), 2000);
    enf.run();
    assert_eq!(
        enf.sim().stats().delivered + enf.sim().stats().delivered_external,
        10,
        "all packets delivered despite expiry"
    );
    let src_stub = world.controller.addr_plan().stub_of(ft.src).unwrap();
    let st = enf.proxy_state(src_stub);
    let stats = st.lock().flows.stats();
    assert!(stats.expired >= 9, "expiries observed: {stats:?}");
}

/// Strict source routing delivers identically to tunneling (same boxes in
/// the same order for every flow) while leaving zero per-flow state at
/// middleboxes.
#[test]
fn source_routing_is_load_equivalent_and_stateless() {
    let world = World::build(&ExperimentConfig::campus(3));
    let flows = sdm_workload::generate_flows(
        &world.generated,
        world.controller.addr_plan(),
        &WorkloadConfig {
            flows: 60,
            seed: 5,
            ..Default::default()
        },
    );
    let mut outcomes = Vec::new();
    for encoding in [
        sdm::core::SteeringEncoding::IpOverIp,
        sdm::core::SteeringEncoding::SourceRouting,
    ] {
        let mut enf = world.controller.enforcement(
            Strategy::HotPotato,
            None,
            EnforcementOptions {
                encoding,
                ..Default::default()
            },
        );
        for (i, f) in flows.iter().enumerate() {
            enf.inject_flow_packets(f.five_tuple, f.packets.min(10), 400, SimTime(i as u64), 50);
        }
        enf.run();
        let state: usize = world
            .deployment
            .iter()
            .map(|(id, _)| enf.mbox_state(id).lock().labels.len())
            .sum();
        outcomes.push((
            enf.sim().stats().delivered + enf.sim().stats().delivered_external,
            enf.middlebox_loads(),
            state,
            enf.sim().stats().encapsulated_hops,
        ));
    }
    let (d_tun, loads_tun, _, enc_tun) = &outcomes[0];
    let (d_sr, loads_sr, state_sr, enc_sr) = &outcomes[1];
    assert_eq!(d_tun, d_sr, "identical delivery");
    assert_eq!(loads_tun, loads_sr, "identical middlebox loads");
    assert_eq!(*state_sr, 0, "SR leaves no middlebox state");
    assert_eq!(*enc_sr, 0, "SR never encapsulates");
    assert!(*enc_tun > 0);
}

/// Label-switched packets whose label table entry has expired are dropped
/// and counted, never mis-delivered.
#[test]
fn label_miss_drops_are_counted() {
    let world = World::build(&ExperimentConfig::campus(3));
    // proxy keeps its flow entry alive (long flow ttl) but the middlebox
    // label tables expire quickly -> label-switched packet hits a miss
    let opts = EnforcementOptions {
        encoding: sdm::core::SteeringEncoding::LabelSwitching,
        label_ttl: 100,
        ..Default::default()
    };
    let mut enf = world
        .controller
        .enforcement(Strategy::HotPotato, None, opts);
    let flows = sdm_workload::generate_flows(
        &world.generated,
        world.controller.addr_plan(),
        &WorkloadConfig {
            flows: 1,
            seed: 5,
            ..Default::default()
        },
    );
    let ft = flows[0].five_tuple;
    enf.inject_flow_packets(ft, 6, 400, SimTime(0), 3000);
    enf.run();
    let stats = enf.sim().stats();
    let delivered = stats.delivered + stats.delivered_external;
    // first packet delivers via tunnels; later label-switched ones find
    // expired label entries somewhere and are dropped + counted
    assert!(delivered < 6, "some label misses expected");
    let mut misses = 0;
    for (id, _) in world.deployment.iter() {
        misses += enf.mbox_state(id).lock().counters.label_misses;
    }
    assert!(misses > 0, "label misses must be counted");
    assert_eq!(delivered + misses, 6, "every packet accounted for");
}
