//! Integration tests of the full measurement → LP → load-balanced
//! enforcement pipeline at the paper's evaluation deployment.

use sdm::core::{LbOptions, Strategy};
use sdm::policy::NetworkFunction;
use sdm::workload::PolicyClassCounts;
use sdm_bench::{ExperimentConfig, World};

use NetworkFunction::*;

/// Per-type *total* load is a strategy-independent invariant: every packet
/// matching a policy whose chain contains `e` is processed by exactly one
/// box offering `e` (single-function deployment), so the totals under HP,
/// Rand and LB must agree.
#[test]
fn per_type_totals_are_strategy_invariant() {
    let world = World::build(&ExperimentConfig::campus(11));
    let flows = world.flows(60_000, 4);
    let cmp = world.compare_strategies(&flows);
    for f in [Firewall, Ids, WebProxy, TrafficMonitor] {
        let hp = cmp.hp.report.row(f).map_or(0, |r| r.total);
        let rd = cmp.rand.report.row(f).map_or(0, |r| r.total);
        let lb = cmp.lb.report.row(f).map_or(0, |r| r.total);
        assert_eq!(hp, rd, "{f} totals HP vs Rand");
        assert_eq!(hp, lb, "{f} totals HP vs LB");
    }
}

/// The headline ordering of Figures 4–5: LB's worst box beats HP's worst
/// box on every middlebox type (modest hash noise allowed).
#[test]
fn lb_beats_hp_on_every_type() {
    let world = World::build(&ExperimentConfig::campus(3));
    let flows = world.flows(150_000, 8);
    let cmp = world.compare_strategies(&flows);
    for f in [Firewall, Ids, WebProxy, TrafficMonitor] {
        let hp = cmp.hp.report.row(f).map_or(0, |r| r.max) as f64;
        let lb = cmp.lb.report.row(f).map_or(0, |r| r.max) as f64;
        assert!(
            lb <= hp * 1.05,
            "{f}: LB max {lb} should be below HP max {hp}"
        );
    }
}

/// The LP's λ matches the LB run's worst observed load reasonably well —
/// the hash-based splitter realizes the LP solution up to flow granularity.
#[test]
fn realized_max_load_tracks_lambda() {
    let world = World::build(&ExperimentConfig::campus(3));
    let flows = world.flows(200_000, 9);
    let cmp = world.compare_strategies(&flows);
    let lambda = cmp.lb_report.lambda;
    let realized = cmp.lb.report.overall_max() as f64;
    assert!(
        realized <= lambda * 1.25,
        "realized {realized} too far above lambda {lambda}"
    );
    assert!(
        realized >= lambda * 0.75,
        "realized {realized} suspiciously below lambda {lambda}"
    );
}

/// Measurements collected during an LB run match the originally measured
/// matrix (steering must not change what the proxies see).
#[test]
fn measurements_are_steering_invariant() {
    let world = World::build(&ExperimentConfig::campus(7));
    let flows = world.flows(40_000, 2);
    let hp = world.run_strategy(Strategy::HotPotato, None, &flows);
    let rand = world.run_strategy(Strategy::Random { salt: 1 }, None, &flows);
    for p in hp.measurements.policies() {
        assert_eq!(
            hp.measurements.total(p),
            rand.measurements.total(p),
            "policy {p} totals differ"
        );
    }
}

/// The λ ≤ 1 dependability check: tiny capacities make the LP infeasible,
/// and the error says so.
#[test]
fn lambda_cap_flags_overload() {
    let world = World::build(&ExperimentConfig::campus(3));
    let flows = world.flows(50_000, 3);
    let hp = world.run_strategy(Strategy::HotPotato, None, &flows);
    let err = world
        .controller
        .solve_load_balanced(&hp.measurements, LbOptions { cap_lambda: true })
        .unwrap_err();
    assert!(matches!(err, sdm::core::LbError::Lp(_)), "{err}");
}

/// Waxman-scale pipeline stays correct (smaller volume for test speed).
#[test]
fn waxman_pipeline_end_to_end() {
    let mut cfg = ExperimentConfig::waxman(5);
    cfg.policy_counts = PolicyClassCounts {
        many_to_one: 4,
        one_to_many: 4,
        one_to_one: 4,
        companions: false,
    };
    let world = World::build(&cfg);
    let flows = world.flows(80_000, 6);
    let total: u64 = flows.iter().map(|f| f.packets).sum();
    let cmp = world.compare_strategies(&flows);
    assert_eq!(cmp.hp.delivered, total);
    assert_eq!(cmp.lb.delivered, total);
    assert!(cmp.lb.report.overall_max() <= cmp.hp.report.overall_max());
}

/// k = 1 candidate sets reduce the LB strategy to hot-potato exactly.
#[test]
fn k_equals_one_reduces_to_hot_potato() {
    let mut cfg = ExperimentConfig::campus(3);
    cfg.k = sdm::core::KConfig::uniform(1);
    let world = World::build(&cfg);
    let flows = world.flows(30_000, 4);
    let cmp = world.compare_strategies(&flows);
    assert_eq!(cmp.hp.loads, cmp.lb.loads, "k=1: LB must equal HP");
    assert_eq!(cmp.hp.loads, cmp.rand.loads, "k=1: Rand must equal HP");
}
