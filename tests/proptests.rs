//! Workspace-level property tests: invariants of the whole enforcement
//! system on randomized small worlds.

use sdm::core::{
    Controller, Deployment, EnforcementOptions, KConfig, LbOptions, MiddleboxSpec,
    Strategy as Steering,
};
use sdm::netsim::{FiveTuple, Protocol, StubId};
use sdm::policy::{ActionList, NetworkFunction, Policy, PolicySet, TrafficDescriptor};
use sdm::topology::campus::campus;
use sdm::util::prop::{check, Config};
use sdm::util::rng::StdRng;
use sdm::util::{prop_assert, prop_assert_eq};

use NetworkFunction::*;

#[derive(Debug, Clone)]
struct SmallWorld {
    seed: u64,
    /// count per function (FW, IDS, WP, TM), each 1..=3
    mbox_counts: [usize; 4],
    k: usize,
    /// flows: (src stub, dst stub, sport, class 0..3, packets)
    flows: Vec<(u32, u32, u16, u8, u64)>,
}

/// Raw generated case: (seed, mbox counts, k, flows) — kept as a plain
/// tuple so the harness's component-wise shrinking applies.
type RawWorld = (u64, [usize; 4], usize, Vec<(u32, u32, u16, u8, u64)>);

fn arb_world(rng: &mut StdRng) -> RawWorld {
    let n_flows = rng.gen_range(1usize..40);
    let flows = (0..n_flows)
        .map(|_| {
            (
                rng.gen_range(0u32..10),
                rng.gen_range(0u32..10),
                rng.gen_range(1000u16..60000),
                rng.gen_range(0u8..3),
                rng.gen_range(1u64..500),
            )
        })
        .collect();
    (
        rng.next_u64(),
        [
            rng.gen_range(1usize..=3),
            rng.gen_range(1usize..=3),
            rng.gen_range(1usize..=3),
            rng.gen_range(1usize..=3),
        ],
        rng.gen_range(1usize..=4),
        flows,
    )
}

/// Re-validates a (possibly shrunk) raw case into the generator's domain.
fn world_of(raw: &RawWorld) -> SmallWorld {
    let &(seed, counts, k, ref flows) = raw;
    SmallWorld {
        seed,
        mbox_counts: counts.map(|c| c.clamp(1, 3)),
        k: k.clamp(1, 4),
        flows: flows
            .iter()
            .map(|&(s, d, sp, cl, p)| (s % 10, d % 10, sp, cl % 3, p.max(1)))
            .collect(),
    }
}

/// The three policy classes of §IV.A on fixed ports.
fn world_policies() -> PolicySet {
    let mut set = PolicySet::new();
    set.push(Policy::new(
        TrafficDescriptor::new().dst_port(2000),
        ActionList::chain([Firewall, Ids]),
    ));
    set.push(Policy::new(
        TrafficDescriptor::new().dst_port(80),
        ActionList::chain([Firewall, Ids, WebProxy]),
    ));
    set.push(Policy::new(
        TrafficDescriptor::new().dst_port(3000),
        ActionList::chain([Ids, TrafficMonitor]),
    ));
    set
}

fn build_controller(w: &SmallWorld) -> Controller {
    let plan = campus(w.seed);
    let mut dep = Deployment::new();
    let fns = [Firewall, Ids, WebProxy, TrafficMonitor];
    let mut s = w.seed;
    for (fi, &f) in fns.iter().enumerate() {
        for _ in 0..w.mbox_counts[fi] {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let core = plan.cores()[(s >> 33) as usize % plan.cores().len()];
            dep.add(MiddleboxSpec::new(f, core, 1.0));
        }
    }
    Controller::new(plan, dep, world_policies(), KConfig::uniform(w.k))
}

fn flows_of(w: &SmallWorld, c: &Controller) -> Vec<(FiveTuple, u64)> {
    let ports = [2000u16, 80, 3000];
    w.flows
        .iter()
        .map(|&(src, dst, sport, class, pkts)| {
            let dst = if dst == src { (dst + 1) % 10 } else { dst };
            (
                FiveTuple {
                    src: c.addr_plan().host(StubId(src), sport as u32 % 100),
                    dst: c.addr_plan().host(StubId(dst), 3),
                    src_port: sport,
                    dst_port: ports[class as usize],
                    proto: Protocol::Tcp,
                },
                pkts,
            )
        })
        .collect()
}

/// Conservation: every injected packet is delivered (all functions are
/// deployed), and per-function totals equal the volume of traffic
/// whose chain contains that function — under every strategy.
#[test]
fn packets_conserved_and_functions_applied() {
    check(
        "packets_conserved_and_functions_applied",
        &Config::with_cases(64),
        arb_world,
        |raw| {
            let w = world_of(raw);
            if w.flows.is_empty() {
                return Ok(());
            }
            let c = build_controller(&w);
            let flows = flows_of(&w, &c);
            let total: u64 = flows.iter().map(|&(_, p)| p).sum();
            // expected volume per function from the class chains
            let chain_contains = |port: u16, f: NetworkFunction| -> bool {
                match port {
                    2000 => matches!(f, Firewall | Ids),
                    80 => matches!(f, Firewall | Ids | WebProxy),
                    3000 => matches!(f, Ids | TrafficMonitor),
                    _ => false,
                }
            };
            for strategy in [
                Steering::HotPotato,
                Steering::Random { salt: w.seed },
                Steering::LoadBalanced, // no weights -> hot-potato fallback
            ] {
                let mut enf = c.enforcement(strategy, None, EnforcementOptions::default());
                for &(ft, pkts) in &flows {
                    enf.inject_flow(ft, pkts, 256);
                }
                enf.run();
                prop_assert_eq!(enf.sim().stats().delivered, total, "strategy {:?}", strategy);
                let loads = enf.middlebox_loads();
                for f in [Firewall, Ids, WebProxy, TrafficMonitor] {
                    let expect: u64 = flows
                        .iter()
                        .filter(|(ft, _)| chain_contains(ft.dst_port, f))
                        .map(|&(_, p)| p)
                        .sum();
                    let got: u64 = c
                        .deployment()
                        .offering(f)
                        .iter()
                        .map(|m| loads[m.index()])
                        .sum();
                    prop_assert_eq!(got, expect, "function {} under {:?}", f, strategy);
                }
            }
            Ok(())
        },
    );
}

/// The LP never does worse than hot-potato: λ* ≤ max hot-potato load,
/// and the LP weights are non-negative and flow-conserving.
#[test]
fn lp_lambda_bounded_by_hot_potato() {
    check(
        "lp_lambda_bounded_by_hot_potato",
        &Config::with_cases(64),
        arb_world,
        |raw| {
            let w = world_of(raw);
            if w.flows.is_empty() {
                return Ok(());
            }
            let c = build_controller(&w);
            let flows = flows_of(&w, &c);
            let mut hp = c.enforcement(Steering::HotPotato, None, EnforcementOptions::default());
            for &(ft, pkts) in &flows {
                hp.inject_flow(ft, pkts, 256);
            }
            hp.run();
            let measurements = hp.measurements();
            if measurements.is_empty() {
                return Ok(());
            }
            let (weights, report) = c
                .solve_load_balanced(&measurements, LbOptions::default())
                .expect("deployment offers all functions");
            let hp_max = *hp.middlebox_loads().iter().max().unwrap() as f64;
            prop_assert!(
                report.lambda <= hp_max + 1e-6,
                "lambda {} > hp max {}",
                report.lambda,
                hp_max
            );
            prop_assert!(report.lambda >= 0.0);
            prop_assert!(weights.lambda() == report.lambda);
            Ok(())
        },
    );
}

/// Label switching never changes loads or delivery (packet-level).
#[test]
fn label_switching_equivalence() {
    check(
        "label_switching_equivalence",
        &Config::with_cases(64),
        arb_world,
        |raw| {
            let w = world_of(raw);
            if w.flows.is_empty() {
                return Ok(());
            }
            let c = build_controller(&w);
            let flows = flows_of(&w, &c);
            let mut outcomes = Vec::new();
            for ls in [false, true] {
                let mut enf = c.enforcement(
                    Steering::HotPotato,
                    None,
                    EnforcementOptions {
                        encoding: if ls {
                            sdm::core::SteeringEncoding::LabelSwitching
                        } else {
                            sdm::core::SteeringEncoding::IpOverIp
                        },
                        ..Default::default()
                    },
                );
                for (i, &(ft, pkts)) in flows.iter().enumerate() {
                    enf.inject_flow_packets(
                        ft,
                        pkts.min(5),
                        256,
                        sdm::netsim::SimTime(i as u64),
                        500,
                    );
                }
                enf.run();
                outcomes.push((enf.sim().stats().delivered, enf.middlebox_loads()));
            }
            prop_assert_eq!(&outcomes[0], &outcomes[1]);
            Ok(())
        },
    );
}

/// The batched calendar-queue drain (`pop_tick_batch`) yields exactly the
/// scalar `pop` order — including across the one seam where it could
/// plausibly reorder: the 1024-tick ring window → far-future heap spill
/// boundary, where heap entries migrate back into ring buckets as the
/// window advances. Randomized pushes straddle the boundary and drains
/// use randomized batch sizes, with both queues kept in lockstep.
#[test]
fn batched_queue_drain_matches_scalar_pop_order() {
    use sdm::netsim::{CalendarQueue, SimTime};
    check(
        "batched_queue_drain_matches_scalar_pop_order",
        &Config::with_cases(16),
        |rng: &mut StdRng| {
            let rounds = rng.gen_range(1usize..5);
            (0..rounds)
                .map(|_| {
                    let n = rng.gen_range(1usize..200);
                    // A quarter of the offsets land past the 1024-tick ring
                    // window, into the far-future heap.
                    let offs = (0..n)
                        .map(|_| {
                            if rng.gen_range(0u8..4) == 0 {
                                rng.gen_range(1024u64..5000)
                            } else {
                                rng.gen_range(0u64..1024)
                            }
                        })
                        .collect::<Vec<u64>>();
                    let maxes = (0..rng.gen_range(1usize..8))
                        .map(|_| rng.gen_range(1usize..64))
                        .collect::<Vec<usize>>();
                    (offs, maxes)
                })
                .collect::<Vec<_>>()
        },
        |ops| {
            let mut scalar: CalendarQueue<u32> = CalendarQueue::new();
            let mut batched: CalendarQueue<u32> = CalendarQueue::new();
            let mut next_id = 0u32;
            let mut watermark = 0u64; // max tick popped so far: pushes stay in the future
            let mut got_scalar = Vec::new();
            let mut got_batched = Vec::new();
            let mut buf = Vec::new();
            for (offs, maxes) in ops {
                for &o in offs {
                    let at = SimTime(watermark + o);
                    scalar.push(at, next_id);
                    batched.push(at, next_id);
                    next_id += 1;
                }
                // Partial drains in lockstep: whatever one tick-batch
                // removes, the scalar queue pops the same count.
                for &m in maxes {
                    buf.clear();
                    let Some(tick) = batched.pop_tick_batch(m.max(1), &mut buf) else {
                        break;
                    };
                    watermark = watermark.max(tick.0);
                    for &v in &buf {
                        got_batched.push((tick.0, v));
                    }
                    for _ in 0..buf.len() {
                        let (t, v) = scalar.pop().expect("scalar queue ran dry first");
                        got_scalar.push((t.0, v));
                    }
                }
            }
            // Drain the rest through both paths.
            loop {
                buf.clear();
                let Some(tick) = batched.pop_tick_batch(97, &mut buf) else {
                    break;
                };
                for &v in &buf {
                    got_batched.push((tick.0, v));
                }
            }
            while let Some((t, v)) = scalar.pop() {
                got_scalar.push((t.0, v));
            }
            prop_assert!(scalar.is_empty() && batched.is_empty(), "both queues drained");
            prop_assert_eq!(
                got_batched,
                got_scalar,
                "batched tick-drain order != scalar pop order"
            );
            Ok(())
        },
    );
}
