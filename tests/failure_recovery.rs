//! Dependability under middlebox failure: a crashed box blackholes
//! traffic (detected, never silently bypassed), and the controller's
//! recomputation routes fresh enforcement around it.

use sdm::core::{
    Controller, Deployment, EnforcementOptions, KConfig, MiddleboxSpec, SteerPoint, Strategy,
};
use sdm::netsim::{FiveTuple, Protocol, StubId};
use sdm::policy::{ActionList, NetworkFunction, Policy, PolicySet, TrafficDescriptor};
use sdm::topology::campus::campus;

use NetworkFunction::*;

fn world() -> Controller {
    let plan = campus(4);
    let mut dep = Deployment::new();
    dep.add(MiddleboxSpec::new(Firewall, plan.cores()[0], 1.0)); // m0
    dep.add(MiddleboxSpec::new(Firewall, plan.cores()[8], 1.0)); // m1
    dep.add(MiddleboxSpec::new(Ids, plan.cores()[4], 1.0)); // m2
    let mut pol = PolicySet::new();
    pol.push(Policy::new(
        TrafficDescriptor::new().dst_port(80),
        ActionList::chain([Firewall, Ids]),
    ));
    Controller::new(plan, dep, pol, KConfig::uniform(2))
}

fn flows(c: &Controller, n: u16) -> Vec<FiveTuple> {
    (0..n)
        .map(|i| FiveTuple {
            src: c.addr_plan().host(StubId((i % 10) as u32), 0),
            dst: c.addr_plan().host(StubId(((i + 1) % 10) as u32), 0),
            src_port: 10_000 + i,
            dst_port: 80,
            proto: Protocol::Tcp,
        })
        .collect()
}

/// A crashed middlebox drops traffic — enforcement fails *visibly* (the
/// dependable behaviour: matching traffic never bypasses its chain).
#[test]
fn crash_blackholes_its_share_of_traffic() {
    let c = world();
    let mut enf = c.enforcement(Strategy::HotPotato, None, EnforcementOptions::default());
    let fts = flows(&c, 100);
    // crash the FW that hot-potato routes stub 0's traffic to
    let victim = c
        .assignments()
        .closest(SteerPoint::Proxy(StubId(0)), Firewall)
        .unwrap();
    enf.fail_middlebox(victim);
    for &ft in &fts {
        enf.inject_flow(ft, 1, 100);
    }
    enf.run();
    let dropped = enf.mbox_state(victim).lock().counters.dropped_failed;
    assert!(dropped > 0, "victim must have received (and dropped) traffic");
    assert_eq!(
        enf.sim().stats().delivered + dropped,
        100,
        "every packet is either delivered or visibly dropped"
    );
    assert!(enf.sim().stats().delivered < 100);
}

/// After the controller recomputes, fresh enforcement avoids the failed
/// box entirely and delivers everything through the survivor.
#[test]
fn controller_recovery_restores_full_delivery() {
    let mut c = world();
    let victim = c
        .assignments()
        .closest(SteerPoint::Proxy(StubId(0)), Firewall)
        .unwrap();
    c.fail_middlebox(victim);
    // candidate sets no longer contain the victim, for any steer point
    for s in 0..10u32 {
        let cands = c.assignments().candidates(SteerPoint::Proxy(StubId(s)), Firewall);
        assert!(!cands.contains(&victim), "stub {s} still routed to victim");
        assert!(!cands.is_empty(), "stub {s} lost all FW candidates");
    }
    let mut enf = c.enforcement(Strategy::HotPotato, None, EnforcementOptions::default());
    enf.fail_middlebox(victim); // the box is still crashed in the data plane
    for &ft in &flows(&c, 100) {
        enf.inject_flow(ft, 1, 100);
    }
    enf.run();
    assert_eq!(enf.sim().stats().delivered, 100, "recovery must be total");
    assert_eq!(enf.middlebox_loads()[victim.index()], 0);
}

/// The load-balancing LP also routes around failed boxes, and restoring
/// the box brings it back into the optimum.
#[test]
fn lp_routes_around_failed_box_and_back() {
    let mut c = world();
    let fts = flows(&c, 200);
    let mut measure = c.enforcement(Strategy::HotPotato, None, EnforcementOptions::default());
    for &ft in &fts {
        measure.inject_flow(ft, 10, 100);
    }
    measure.run();
    let tm = measure.measurements();

    use sdm::core::MiddleboxId;
    let victim = MiddleboxId(0);
    c.fail_middlebox(victim);
    let (weights, report) = c
        .solve_load_balanced(&tm, sdm::core::LbOptions::default())
        .expect("one FW remains");
    // all FW traffic must fit on the surviving FW: lambda = total volume
    assert!((report.lambda - 2000.0).abs() < 1e-6, "{}", report.lambda);
    let mut enf = c.enforcement(Strategy::LoadBalanced, Some(weights), EnforcementOptions::default());
    enf.fail_middlebox(victim);
    for &ft in &fts {
        enf.inject_flow(ft, 10, 100);
    }
    enf.run();
    assert_eq!(enf.sim().stats().delivered, 2000);
    assert_eq!(enf.middlebox_loads()[0], 0, "victim untouched");
    assert_eq!(enf.middlebox_loads()[1], 2000, "survivor carries all");

    // restore: λ stays pinned by the single IDS (2000), but the FW load
    // splits evenly again thanks to the per-type refinement pass
    c.restore_middlebox(victim);
    let (weights, report) = c
        .solve_load_balanced(&tm, sdm::core::LbOptions::default())
        .unwrap();
    assert!((report.lambda - 2000.0).abs() < 1e-6);
    let mut enf = c.enforcement(Strategy::LoadBalanced, Some(weights), EnforcementOptions::default());
    for &ft in &fts {
        enf.inject_flow(ft, 10, 100);
    }
    enf.run();
    let loads = enf.middlebox_loads();
    assert!(loads[0] > 500 && loads[1] > 500, "FW split restored: {loads:?}");
    assert_eq!(loads[0] + loads[1], 2000);
}

/// Failing every box of a function makes policies unenforceable: the LP
/// reports the missing function instead of silently skipping it.
#[test]
fn total_function_failure_is_reported() {
    let mut c = world();
    use sdm::core::MiddleboxId;
    c.fail_middlebox(MiddleboxId(2)); // the only IDS
    let mut measure = c.enforcement(Strategy::HotPotato, None, EnforcementOptions::default());
    for &ft in &flows(&c, 10) {
        measure.inject_flow(ft, 1, 100);
    }
    measure.run();
    let err = c
        .solve_load_balanced(&measure.measurements(), sdm::core::LbOptions::default())
        .unwrap_err();
    assert!(
        matches!(err, sdm::core::LbError::MissingFunction(Ids, _)),
        "{err}"
    );
}
