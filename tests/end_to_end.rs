//! Workspace integration tests: full controller → proxy → middlebox
//! pipelines, verifying chain traversal order, multi-policy enforcement,
//! and inbound/outbound handling.

use sdm::core::{
    Controller, Deployment, EnforcementOptions, KConfig, SteeringEncoding, MiddleboxSpec, Strategy,
};
use sdm::netsim::{FiveTuple, Protocol, SimTime, StubId};
use sdm::policy::{
    ActionList, LabelKey, NetworkFunction, Policy, PolicySet, TrafficDescriptor,
};
use sdm::topology::campus::campus;

use NetworkFunction::*;

fn flow(c: &Controller, from: u32, to: u32, sp: u16, dp: u16) -> FiveTuple {
    FiveTuple {
        src: c.addr_plan().host(StubId(from), 0),
        dst: c.addr_plan().host(StubId(to), 0),
        src_port: sp,
        dst_port: dp,
        proto: Protocol::Tcp,
    }
}

/// One box per function; the label tables left behind prove the traversal
/// order: the first box's entry points at the second box, the last box's
/// entry carries the final destination.
#[test]
fn chain_order_is_enforced() {
    let plan = campus(2);
    let mut dep = Deployment::new();
    let fw = dep.add(MiddleboxSpec::new(Firewall, plan.cores()[1], 1.0));
    let ids = dep.add(MiddleboxSpec::new(Ids, plan.cores()[9], 1.0));
    let mut pol = PolicySet::new();
    pol.push(Policy::new(
        TrafficDescriptor::new().dst_port(80),
        ActionList::chain([Firewall, Ids]),
    ));
    let c = Controller::new(plan, dep, pol, KConfig::uniform(1));
    let mut enf = c.enforcement(
        Strategy::HotPotato,
        None,
        EnforcementOptions {
            encoding: SteeringEncoding::LabelSwitching,
            ..Default::default()
        },
    );
    let ft = flow(&c, 0, 6, 1000, 80);
    enf.inject_flow_packets(ft, 5, 500, SimTime(0), 300);
    enf.run();
    assert_eq!(enf.sim().stats().delivered, 5);

    // FW's label entry must point at IDS (the *next* hop), not at the
    // destination; IDS's entry must store the final destination.
    let fw_state = enf.mbox_state(fw);
    let ids_state = enf.mbox_state(ids);
    let ids_addr = enf.config().mbox_addr(ids);
    let mut fw_tbl = fw_state.lock();
    let mut ids_tbl = ids_state.lock();
    assert_eq!(fw_tbl.labels.len(), 1);
    assert_eq!(ids_tbl.labels.len(), 1);
    // find the key via the known flow source + label 0 (first allocation)
    let key = LabelKey {
        src: ft.src,
        label: sdm::netsim::Label(0),
    };
    let fw_entry = fw_tbl.labels.lookup(&key, SimTime(10_000)).expect("FW entry");
    assert_eq!(fw_entry.next_hop, Some(ids_addr), "FW must forward to IDS");
    assert_eq!(fw_entry.final_dst, None);
    let ids_entry = ids_tbl.labels.lookup(&key, SimTime(10_000)).expect("IDS entry");
    assert_eq!(ids_entry.next_hop, None);
    assert_eq!(ids_entry.final_dst, Some(ft.dst), "IDS must restore dst");
}

/// Reversing the action list reverses the label-table roles.
#[test]
fn reversed_chain_reverses_roles() {
    let plan = campus(2);
    let mut dep = Deployment::new();
    let fw = dep.add(MiddleboxSpec::new(Firewall, plan.cores()[1], 1.0));
    let ids = dep.add(MiddleboxSpec::new(Ids, plan.cores()[9], 1.0));
    let mut pol = PolicySet::new();
    pol.push(Policy::new(
        TrafficDescriptor::new().dst_port(80),
        ActionList::chain([Ids, Firewall]), // reversed
    ));
    let c = Controller::new(plan, dep, pol, KConfig::uniform(1));
    let mut enf = c.enforcement(
        Strategy::HotPotato,
        None,
        EnforcementOptions {
            encoding: SteeringEncoding::LabelSwitching,
            ..Default::default()
        },
    );
    let ft = flow(&c, 0, 6, 1000, 80);
    enf.inject_flow_packets(ft, 3, 500, SimTime(0), 300);
    enf.run();
    assert_eq!(enf.sim().stats().delivered, 3);
    let key = LabelKey {
        src: ft.src,
        label: sdm::netsim::Label(0),
    };
    let fw_addr = enf.config().mbox_addr(fw);
    let ids_state = enf.mbox_state(ids);
    let mut ids_tbl = ids_state.lock();
    let e = ids_tbl.labels.lookup(&key, SimTime(10_000)).expect("IDS entry");
    assert_eq!(e.next_hop, Some(fw_addr), "IDS now forwards to FW");
    let fw_state = enf.mbox_state(fw);
    let mut fw_tbl = fw_state.lock();
    let e = fw_tbl.labels.lookup(&key, SimTime(10_000)).expect("FW entry");
    assert_eq!(e.final_dst, Some(ft.dst), "FW is now the last hop");
}

/// First-match semantics across proxies: a more specific early policy wins
/// over a later wildcard one.
#[test]
fn first_match_priority_respected_in_network() {
    let plan = campus(2);
    let mut dep = Deployment::new();
    dep.add(MiddleboxSpec::new(Firewall, plan.cores()[1], 1.0));
    dep.add(MiddleboxSpec::new(Ids, plan.cores()[9], 1.0));
    let addr_plan = sdm::netsim::AddressPlan::new(&plan);
    let mut pol = PolicySet::new();
    // stub 0's web traffic is explicitly permitted...
    pol.push(Policy::permit(
        TrafficDescriptor::new()
            .src_prefix(addr_plan.subnet(StubId(0)))
            .dst_port(80),
    ));
    // ...everything else on port 80 goes through FW
    pol.push(Policy::new(
        TrafficDescriptor::new().dst_port(80),
        ActionList::chain([Firewall]),
    ));
    let c = Controller::new(plan, dep, pol, KConfig::uniform(1));
    let mut enf = c.enforcement(Strategy::HotPotato, None, EnforcementOptions::default());
    enf.inject_flow(flow(&c, 0, 5, 100, 80), 10, 100); // permitted
    enf.inject_flow(flow(&c, 1, 5, 100, 80), 10, 100); // firewalled
    enf.run();
    assert_eq!(enf.sim().stats().delivered, 20);
    let loads = enf.middlebox_loads();
    assert_eq!(loads[0], 10, "only stub 1's flow hits the FW");
    assert_eq!(loads[1], 0);
}

/// Multi-function middlebox applies consecutive chain functions locally
/// (one visit, two applications).
#[test]
fn multi_function_box_applies_consecutively() {
    let plan = campus(2);
    let mut dep = Deployment::new();
    let combo = dep.add(MiddleboxSpec {
        functions: [Firewall, Ids].into_iter().collect(),
        router: plan.cores()[3],
        capacity: 1.0,
        attachment_kind: "off-path".into(),
    });
    let mut pol = PolicySet::new();
    pol.push(Policy::new(
        TrafficDescriptor::new().dst_port(80),
        ActionList::chain([Firewall, Ids]),
    ));
    let c = Controller::new(plan, dep, pol, KConfig::uniform(1));
    let mut enf = c.enforcement(Strategy::HotPotato, None, EnforcementOptions::default());
    enf.inject_flow(flow(&c, 0, 4, 700, 80), 25, 100);
    enf.run();
    assert_eq!(enf.sim().stats().delivered, 25);
    assert_eq!(enf.middlebox_loads()[combo.index()], 25, "one visit only");
    let st = enf.mbox_state(combo);
    assert_eq!(st.lock().counters.applications, 50, "both functions applied");
}

/// Traffic whose function has no *available* middlebox is dropped and
/// counted as unenforceable — dependable enforcement never lets
/// policy-matching traffic bypass its chain. A plan with no implementing
/// middlebox at all is rejected statically by `Controller::new` (the
/// verifier's V002); the runtime drop path covers the remaining case, a
/// middlebox lost *after* planning.
#[test]
fn unenforceable_traffic_is_dropped_not_leaked() {
    let plan = campus(2);
    let mut dep = Deployment::new();
    dep.add(MiddleboxSpec::new(Firewall, plan.cores()[1], 1.0));
    let wp = dep.add(MiddleboxSpec::new(WebProxy, plan.cores()[2], 1.0));
    let mut pol = PolicySet::new();
    pol.push(Policy::new(
        TrafficDescriptor::new().dst_port(80),
        ActionList::chain([WebProxy]),
    ));
    let mut c = Controller::new(plan, dep, pol, KConfig::uniform(1));
    c.fail_middlebox(wp); // the only WP dies after the plan verified
    let mut enf = c.enforcement(Strategy::HotPotato, None, EnforcementOptions::default());
    enf.inject_flow(flow(&c, 0, 4, 700, 80), 10, 100);
    enf.run();
    assert_eq!(enf.sim().stats().delivered, 0, "must not bypass the chain");
    let st = enf.proxy_state(StubId(0));
    assert_eq!(st.lock().counters.unenforceable, 10);
}

/// Inbound external traffic entering at a gateway is intercepted by the
/// destination stub's proxy and delivered.
#[test]
fn gateway_inbound_traffic_delivered() {
    let plan = campus(2);
    let gw = plan.gateways()[0];
    let mut dep = Deployment::new();
    dep.add(MiddleboxSpec::new(Firewall, plan.cores()[1], 1.0));
    let c = Controller::new(plan, dep, PolicySet::new(), KConfig::uniform(1));
    let mut enf = c.enforcement(Strategy::HotPotato, None, EnforcementOptions::default());
    let ft = FiveTuple {
        src: "93.184.216.34".parse().unwrap(),
        dst: c.addr_plan().host(StubId(3), 0),
        src_port: 443,
        dst_port: 50_000,
        proto: Protocol::Tcp,
    };
    enf.sim_mut()
        .inject_at_router(gw, sdm::netsim::Packet::with_weight(ft, 400, 7));
    enf.run();
    assert_eq!(enf.sim().stats().delivered, 7);
    let st = enf.proxy_state(StubId(3));
    assert_eq!(st.lock().counters.inbound, 7);
}

/// Device-side classifier choice (§III.D): a trie-based policy table
/// produces byte-identical enforcement to the linear scan.
#[test]
fn trie_device_classifier_is_equivalent() {
    use sdm::policy::ClassifierKind;
    let plan = campus(2);
    let mut dep = Deployment::new();
    dep.add(MiddleboxSpec::new(Firewall, plan.cores()[1], 1.0));
    dep.add(MiddleboxSpec::new(Ids, plan.cores()[9], 1.0));
    let mut pol = PolicySet::new();
    pol.push(Policy::new(
        TrafficDescriptor::new().dst_port(80),
        ActionList::chain([Firewall, Ids]),
    ));
    pol.push(Policy::new(
        TrafficDescriptor::new().dst_port(22),
        ActionList::chain([Ids]),
    ));
    let c = Controller::new(plan, dep, pol, KConfig::uniform(2));
    let mut outcomes = Vec::new();
    for kind in [ClassifierKind::Linear, ClassifierKind::Trie] {
        let mut enf = c.enforcement(
            Strategy::HotPotato,
            None,
            EnforcementOptions {
                classifier: kind,
                ..Default::default()
            },
        );
        for i in 0..50u16 {
            enf.inject_flow(flow(&c, (i % 10) as u32, ((i + 3) % 10) as u32, 5000 + i,
                                 if i % 2 == 0 { 80 } else { 22 }), 4, 200);
        }
        enf.run();
        outcomes.push((enf.sim().stats().delivered, enf.middlebox_loads()));
    }
    assert_eq!(outcomes[0], outcomes[1]);
    assert_eq!(outcomes[0].0, 200);
}

/// Packet tracing proves the chain order directly: the trace of a flow
/// shows the FW device strictly before the IDS device strictly before the
/// WP device, then terminal delivery.
#[test]
fn trace_proves_chain_order() {
    let plan = campus(2);
    let mut dep = Deployment::new();
    let fw = dep.add(MiddleboxSpec::new(Firewall, plan.cores()[1], 1.0));
    let ids = dep.add(MiddleboxSpec::new(Ids, plan.cores()[9], 1.0));
    let wp = dep.add(MiddleboxSpec::new(WebProxy, plan.cores()[14], 1.0));
    let mut pol = PolicySet::new();
    pol.push(Policy::new(
        TrafficDescriptor::new().dst_port(80),
        ActionList::chain([Firewall, Ids, WebProxy]),
    ));
    let c = Controller::new(plan, dep, pol, KConfig::uniform(1));
    let mut enf = c.enforcement(Strategy::HotPotato, None, EnforcementOptions::default());
    enf.sim_mut().enable_trace(10_000);
    let ft = flow(&c, 0, 6, 1000, 80);
    enf.inject_flow(ft, 1, 200);
    enf.run();
    assert_eq!(enf.sim().stats().delivered, 1);

    use sdm::netsim::TraceLocation;
    let trace: Vec<_> = enf.sim().trace().to_vec();
    let pos = |loc: TraceLocation| trace.iter().position(|e| e.location == loc);
    let p_fw = pos(TraceLocation::Device(enf.mbox_device(fw))).expect("FW visited");
    let p_ids = pos(TraceLocation::Device(enf.mbox_device(ids))).expect("IDS visited");
    let p_wp = pos(TraceLocation::Device(enf.mbox_device(wp))).expect("WP visited");
    let p_done = pos(TraceLocation::Delivered(StubId(6))).expect("delivered");
    assert!(p_fw < p_ids, "FW must precede IDS");
    assert!(p_ids < p_wp, "IDS must precede WP");
    assert!(p_wp < p_done, "WP must precede delivery");
}

/// Enforcement survives link failure: OSPF reconverges underneath and the
/// tunnels (addressed to middleboxes) simply follow the new shortest
/// paths — the architecture's core transparency claim.
#[test]
fn enforcement_survives_link_failure() {
    let plan = campus(2);
    let mut dep = Deployment::new();
    dep.add(MiddleboxSpec::new(Firewall, plan.cores()[1], 1.0));
    dep.add(MiddleboxSpec::new(Ids, plan.cores()[9], 1.0));
    let mut pol = PolicySet::new();
    pol.push(Policy::new(
        TrafficDescriptor::new().dst_port(80),
        ActionList::chain([Firewall, Ids]),
    ));
    let c = Controller::new(plan.clone(), dep, pol, KConfig::uniform(1));
    let mut enf = c.enforcement(Strategy::HotPotato, None, EnforcementOptions::default());
    let ft = flow(&c, 0, 6, 1000, 80);
    enf.inject_flow(ft, 10, 200);
    enf.run();
    assert_eq!(enf.sim().stats().delivered, 10);

    // fail the busiest core-to-core link and rerun the same flow
    let topo = c.plan().topology();
    let busiest = (0..topo.link_count())
        .map(sdm::topology::LinkId::from_index)
        .filter(|&l| {
            let (a, b, _) = topo.link(l);
            use sdm::topology::NodeKind;
            topo.kind(a) != NodeKind::EdgeRouter && topo.kind(b) != NodeKind::EdgeRouter
        })
        .max_by_key(|&l| enf.sim().stats().link_load[l.index()]);
    if let Some(l) = busiest {
        enf.sim_mut().fail_link(l);
    }
    enf.inject_flow(ft, 10, 200);
    enf.run();
    assert_eq!(
        enf.sim().stats().delivered,
        20,
        "the chain keeps working over reconverged routes"
    );
    // both middleboxes processed both batches
    assert_eq!(enf.middlebox_loads(), vec![20, 20]);
}

/// Middlebox loads are invariant to the routers' ECMP discipline: steering
/// is by middlebox address, so which equal-cost path the routers take
/// underneath cannot change who processes what.
#[test]
fn ecmp_does_not_change_enforcement() {
    use sdm::netsim::EcmpMode;
    let plan = campus(2);
    let mut dep = Deployment::new();
    dep.add(MiddleboxSpec::new(Firewall, plan.cores()[1], 1.0));
    dep.add(MiddleboxSpec::new(Firewall, plan.cores()[12], 1.0));
    dep.add(MiddleboxSpec::new(Ids, plan.cores()[9], 1.0));
    let mut pol = PolicySet::new();
    pol.push(Policy::new(
        TrafficDescriptor::new().dst_port(80),
        ActionList::chain([Firewall, Ids]),
    ));
    let c = Controller::new(plan, dep, pol, KConfig::uniform(2));
    let mut outcomes = Vec::new();
    for ecmp in [EcmpMode::Disabled, EcmpMode::FlowHash] {
        let mut enf = c.enforcement(Strategy::HotPotato, None, EnforcementOptions::default());
        enf.sim_mut().set_ecmp(ecmp);
        for i in 0..80u16 {
            enf.inject_flow(flow(&c, (i % 10) as u32, ((i + 4) % 10) as u32, 2000 + i, 80), 3, 200);
        }
        enf.run();
        outcomes.push((enf.sim().stats().delivered, enf.middlebox_loads()));
    }
    assert_eq!(outcomes[0], outcomes[1]);
    assert_eq!(outcomes[0].0, 240);
}

/// Chains that repeat a function are rejected up front: the data plane
/// resolves chain position by function, so `FW -> IDS -> FW` would be
/// ambiguous at the second firewall.
#[test]
#[should_panic(expected = "repeats function")]
fn repeated_function_chains_rejected() {
    let plan = campus(2);
    let mut dep = Deployment::new();
    dep.add(MiddleboxSpec::new(Firewall, plan.cores()[0], 1.0));
    dep.add(MiddleboxSpec::new(Ids, plan.cores()[1], 1.0));
    let mut pol = PolicySet::new();
    pol.push(Policy::new(
        TrafficDescriptor::new().dst_port(80),
        ActionList::chain([Firewall, Ids, Firewall]),
    ));
    let _ = Controller::new(plan, dep, pol, KConfig::uniform(1));
}

/// Custom network functions work end to end, not just the paper's four.
#[test]
fn custom_functions_enforce() {
    let dpi = Custom(9);
    let scrub = Custom(10);
    let plan = campus(2);
    let mut dep = Deployment::new();
    dep.add(MiddleboxSpec::new(dpi, plan.cores()[2], 1.0));
    dep.add(MiddleboxSpec::new(scrub, plan.cores()[11], 1.0));
    let mut pol = PolicySet::new();
    pol.push(Policy::new(
        TrafficDescriptor::new().dst_port(4433),
        ActionList::chain([dpi, scrub]),
    ));
    let c = Controller::new(plan, dep, pol, KConfig::uniform(1));
    let mut enf = c.enforcement(Strategy::HotPotato, None, EnforcementOptions::default());
    enf.inject_flow(flow(&c, 1, 8, 700, 4433), 40, 100);
    enf.run();
    assert_eq!(enf.sim().stats().delivered, 40);
    assert_eq!(enf.middlebox_loads(), vec![40, 40]);
}

/// Off-path middleboxes cost access-link hops that in-path ones do not;
/// enforcement results are otherwise identical.
#[test]
fn off_path_costs_access_hops_only() {
    let mut outcomes = Vec::new();
    for in_path in [true, false] {
        let plan = campus(2);
        let mut dep = Deployment::new();
        let mut spec = MiddleboxSpec::new(Firewall, plan.cores()[1], 1.0);
        if in_path {
            spec = spec.in_path();
        }
        dep.add(spec);
        let mut pol = PolicySet::new();
        pol.push(Policy::new(
            TrafficDescriptor::new().dst_port(80),
            ActionList::chain([Firewall]),
        ));
        let c = Controller::new(plan, dep, pol, KConfig::uniform(1));
        let mut enf = c.enforcement(Strategy::HotPotato, None, EnforcementOptions::default());
        enf.inject_flow(flow(&c, 0, 5, 900, 80), 10, 100);
        enf.run();
        outcomes.push((
            enf.sim().stats().delivered,
            enf.middlebox_loads(),
            enf.sim().stats().device_link_hops,
        ));
    }
    let (d_in, loads_in, access_in) = &outcomes[0];
    let (d_off, loads_off, access_off) = &outcomes[1];
    assert_eq!(d_in, d_off);
    assert_eq!(loads_in, loads_off);
    assert_eq!(*access_in, 0, "in-path: no access link");
    assert!(*access_off > 0, "off-path: access-link hops accounted");
}

/// Inbound Internet traffic is enforced at the gateway ingress proxy: it
/// traverses its chain before reaching the destination stub — no bypass.
#[test]
fn gateway_inbound_traffic_is_enforced() {
    let plan = campus(2);
    let gw = plan.gateways()[0];
    let mut dep = Deployment::new();
    let fw = dep.add(MiddleboxSpec::new(Firewall, plan.cores()[1], 1.0));
    let ids = dep.add(MiddleboxSpec::new(Ids, plan.cores()[9], 1.0));
    let mut pol = PolicySet::new();
    pol.push(Policy::new(
        TrafficDescriptor::new().dst_port(80), // wildcard source: includes external
        ActionList::chain([Firewall, Ids]),
    ));
    let c = Controller::new(plan, dep, pol, KConfig::uniform(1));
    let mut enf = c.enforcement(Strategy::HotPotato, None, EnforcementOptions::default());
    let ft = FiveTuple {
        src: "93.184.216.34".parse().unwrap(),
        dst: c.addr_plan().host(StubId(3), 0),
        src_port: 443,
        dst_port: 80,
        proto: Protocol::Tcp,
    };
    enf.sim_mut()
        .inject_at_router(gw, sdm::netsim::Packet::with_weight(ft, 400, 25));
    enf.run();
    assert_eq!(enf.sim().stats().delivered, 25);
    let loads = enf.middlebox_loads();
    assert_eq!(loads[fw.index()], 25, "inbound traffic hits the FW");
    assert_eq!(loads[ids.index()], 25, "and the IDS");
    let ig = enf.ingress_state(0);
    assert_eq!(ig.lock().counters.steered, 25);
    // transit traffic through the gateway is NOT re-intercepted: an
    // internal flow to an external server passes the gateway untouched
    let out = FiveTuple {
        src: c.addr_plan().host(StubId(0), 0),
        dst: "93.184.216.34".parse().unwrap(),
        src_port: 50_000,
        dst_port: 9999, // matches nothing
        proto: Protocol::Tcp,
    };
    enf.inject_flow(out, 10, 400);
    enf.run();
    assert_eq!(enf.sim().stats().delivered_external, 10);
    assert_eq!(ig.lock().counters.outbound, 25, "ingress proxy saw only inbound");
}

/// The enforcement machinery is topology-agnostic: the full HP pipeline
/// works unchanged on the two-tier enterprise design.
#[test]
fn enforcement_on_two_tier_topology() {
    use sdm::topology::two_tier::{two_tier, TwoTierConfig};
    let plan = two_tier(TwoTierConfig::default());
    let mut dep = Deployment::new();
    dep.add(MiddleboxSpec::new(Firewall, plan.cores()[0], 1.0));
    dep.add(MiddleboxSpec::new(Ids, plan.cores()[5], 1.0));
    let mut pol = PolicySet::new();
    pol.push(Policy::new(
        TrafficDescriptor::new().dst_port(80),
        ActionList::chain([Firewall, Ids]),
    ));
    let c = Controller::new(plan, dep, pol, KConfig::uniform(1));
    let mut enf = c.enforcement(Strategy::HotPotato, None, EnforcementOptions::default());
    for i in 0..40u16 {
        enf.inject_flow(
            flow(&c, (i % 24) as u32, ((i + 7) % 24) as u32, 6000 + i, 80),
            5,
            200,
        );
    }
    enf.run();
    assert_eq!(enf.sim().stats().delivered, 200);
    assert_eq!(enf.middlebox_loads(), vec![200, 200]);
}
