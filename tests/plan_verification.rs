//! Workspace integration tests for the static plan verifier's fail-fast
//! hooks: `Controller::new` rejects structurally broken plans, and
//! `Controller::run_sharded` rejects broken LP solutions and runtime
//! options before injecting a single packet.
//!
//! The weight-column tests are the regression tie to the PR-2 steering
//! fix: an all-zero or negative first-hop column — the exact shape that
//! once made the data plane divide by a zero weight sum — is now caught
//! statically with a dedicated error code (V006 / V007).

use sdm::core::{
    verify_controller, verify_enforcement, Controller, Deployment, EnforcementOptions,
    FlowSpec, KConfig, MiddleboxId, MiddleboxSpec, SteerPoint, SteeringWeights, Strategy,
    WeightKey,
};
use sdm::netsim::{FiveTuple, Protocol, StubId};
use sdm::policy::{ActionList, NetworkFunction, Policy, PolicySet, PolicyId, TrafficDescriptor};
use sdm::topology::campus::campus;
use sdm::verify::ErrorCode;

use NetworkFunction::*;

/// A small healthy world: FW + IDS boxes, one FW→IDS web policy.
fn healthy_controller() -> Controller {
    let plan = campus(2);
    let mut dep = Deployment::new();
    dep.add(MiddleboxSpec::new(Firewall, plan.cores()[1], 1.0));
    dep.add(MiddleboxSpec::new(Ids, plan.cores()[9], 1.0));
    let mut pol = PolicySet::new();
    pol.push(Policy::new(
        TrafficDescriptor::new().dst_port(80),
        ActionList::chain([Firewall, Ids]),
    ));
    Controller::new(plan, dep, pol, KConfig::uniform(1))
}

fn specs(c: &Controller) -> Vec<FlowSpec> {
    vec![FlowSpec {
        flow: FiveTuple {
            src: c.addr_plan().host(StubId(0), 0),
            dst: c.addr_plan().host(StubId(6), 0),
            src_port: 1000,
            dst_port: 80,
            proto: Protocol::Tcp,
        },
        packets: 10,
        payload: 500,
    }]
}

/// The first-hop weight key every test column targets: proxy of stub 0,
/// policy 0, towards chain stage 0 (the firewall).
fn first_hop_key() -> WeightKey {
    WeightKey {
        point: SteerPoint::Proxy(StubId(0)),
        policy: PolicyId(0),
        next_index: 0,
    }
}

#[test]
fn healthy_controller_verifies_clean() {
    let c = healthy_controller();
    let report = verify_controller(&c);
    assert!(report.is_clean(), "{report}");
    let report = verify_enforcement(&c, None, &EnforcementOptions::default());
    assert!(report.is_clean(), "{report}");
}

#[test]
#[should_panic(expected = "V002")]
fn controller_rejects_an_unimplemented_function() {
    let plan = campus(2);
    let mut dep = Deployment::new();
    dep.add(MiddleboxSpec::new(Firewall, plan.cores()[1], 1.0));
    let mut pol = PolicySet::new();
    pol.push(Policy::new(
        TrafficDescriptor::new().dst_port(80),
        ActionList::chain([WebProxy]), // nothing implements WP
    ));
    let _ = Controller::new(plan, dep, pol, KConfig::uniform(1));
}

/// PR-2 regression tie: the all-zero first-hop column is reported as
/// V007 (zero-weight-column) by the enforcement verifier.
#[test]
fn all_zero_first_hop_column_is_reported() {
    let c = healthy_controller();
    let mut w = SteeringWeights::new(1.0);
    w.set(first_hop_key(), vec![(MiddleboxId(0), 0.0)]);
    let report = verify_enforcement(&c, Some(&w), &EnforcementOptions::default());
    assert!(report.has_code(ErrorCode::ZeroWeightColumn), "{report}");
    assert!(report.has_errors());
}

/// PR-2 regression tie: a negative weight is reported as V006.
#[test]
fn negative_weight_column_is_reported() {
    let c = healthy_controller();
    let mut w = SteeringWeights::new(10.0);
    w.set(first_hop_key(), vec![(MiddleboxId(0), -3.0)]);
    let report = verify_enforcement(&c, Some(&w), &EnforcementOptions::default());
    assert!(report.has_code(ErrorCode::NegativeWeight), "{report}");
}

/// The sharded runtime refuses to start with the broken column installed
/// — the report (with its V007 code) is the panic message.
#[test]
#[should_panic(expected = "V007")]
fn run_sharded_fail_fasts_on_a_zero_weight_column() {
    let c = healthy_controller();
    let flows = specs(&c);
    let mut w = SteeringWeights::new(1.0);
    w.set(first_hop_key(), vec![(MiddleboxId(0), 0.0)]);
    let _ = c.run_sharded(
        Strategy::LoadBalanced,
        Some(&w),
        EnforcementOptions::default(),
        &flows,
        2,
    );
}

#[test]
#[should_panic(expected = "V011")]
fn run_sharded_fail_fasts_on_a_zero_flow_ttl() {
    let c = healthy_controller();
    let flows = specs(&c);
    let options = EnforcementOptions {
        flow_ttl: 0,
        ..Default::default()
    };
    let _ = c.run_sharded(Strategy::HotPotato, None, options, &flows, 2);
}

/// A valid LP solution straight out of the solver passes the same check
/// the sharded runtime applies — the gate accepts what the controller
/// actually produces.
#[test]
fn solved_lp_weights_verify_clean() {
    let c = healthy_controller();
    let flows = specs(&c);
    let hp = c.run_sharded(Strategy::HotPotato, None, Default::default(), &flows, 1);
    let (w, _) = c
        .solve_load_balanced(&hp.measurements, Default::default())
        .expect("LP solves");
    let report = verify_enforcement(&c, Some(&w), &EnforcementOptions::default());
    assert!(report.is_clean(), "{report}");
}
