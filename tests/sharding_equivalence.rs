//! Property test for the flow-sharded parallel data plane:
//! `run_sharded(N)` is **bit-identical** to `run_sharded(1)` and to a
//! legacy single-`Enforcement` run — loads, delivery/drop counters,
//! traffic measurements, per-device counters and soft-state footprints —
//! on randomized deployments, strategies and flow populations.

use sdm::core::{
    Controller, EnforcementOptions, FlowSpec, ShardedRun, StateFootprint,
    Strategy as Steering, SteeringEncoding,
};
use sdm::netsim::SimStats;
use sdm::util::prop::{check, Config};
use sdm::util::rng::StdRng;
use sdm::util::prop_assert_eq;
use sdm_bench::{ExperimentConfig, World};
use sdm_workload::{to_flow_specs, WorkloadConfig};

/// Everything a legacy run exposes, gathered in the sharded layout so the
/// two snapshots compare with one `assert_eq` per field.
struct LegacySnapshot {
    stats: SimStats,
    loads: Vec<u64>,
    measurements: Vec<(sdm::netsim::StubId, sdm::core::DestKey, sdm::policy::PolicyId, f64)>,
    proxy_counters: Vec<sdm::core::ProxyCounters>,
    mbox_counters: Vec<sdm::core::MboxCounters>,
    footprint: StateFootprint,
}

fn legacy_run(
    controller: &Controller,
    strategy: Steering,
    options: EnforcementOptions,
    specs: &[FlowSpec],
) -> LegacySnapshot {
    let mut enf = controller.enforcement(strategy, None, options);
    for s in specs {
        enf.inject_flow(s.flow, s.packets, s.payload);
    }
    enf.run();
    let mut footprint = StateFootprint::default();
    let mut proxy_counters = Vec::new();
    for stub in controller.addr_plan().stubs() {
        let st = enf.proxy_state(stub);
        let st = st.lock();
        proxy_counters.push(st.counters);
        footprint.proxy_flow_entries.push(st.flows.len() as u64);
        footprint.proxy_flow_stats.push(st.flows.stats());
        footprint.proxy_neg_evictions.push(st.flows.negative_evictions());
    }
    for g in 0..controller.plan().gateways().len() {
        let st = enf.ingress_state(g);
        let st = st.lock();
        footprint.ingress_flow_entries.push(st.flows.len() as u64);
        footprint.ingress_neg_evictions.push(st.flows.negative_evictions());
    }
    let mut mbox_counters = Vec::new();
    for (id, _) in controller.deployment().iter() {
        let st = enf.mbox_state(id);
        let st = st.lock();
        mbox_counters.push(st.counters);
        footprint.mbox_flow_entries.push(st.flows.len() as u64);
        footprint.mbox_label_entries.push(st.labels.len() as u64);
        footprint.mbox_flow_stats.push(st.flows.stats());
        footprint.mbox_neg_evictions.push(st.flows.negative_evictions());
    }
    LegacySnapshot {
        stats: enf.sim().stats().clone(),
        loads: enf.middlebox_loads(),
        measurements: enf.measurements().iter().collect(),
        proxy_counters,
        mbox_counters,
        footprint,
    }
}

fn compare(
    legacy: &LegacySnapshot,
    sharded: &ShardedRun,
    label: &str,
) -> Result<(), String> {
    prop_assert_eq!(&sharded.loads, &legacy.loads, "{label}: loads");
    prop_assert_eq!(
        sharded.stats.delivered,
        legacy.stats.delivered,
        "{label}: delivered"
    );
    prop_assert_eq!(
        sharded.stats.delivered_external,
        legacy.stats.delivered_external,
        "{label}: delivered_external"
    );
    prop_assert_eq!(
        sharded.stats.dropped_ttl,
        legacy.stats.dropped_ttl,
        "{label}: dropped_ttl"
    );
    prop_assert_eq!(
        sharded.stats.unroutable,
        legacy.stats.unroutable,
        "{label}: unroutable"
    );
    prop_assert_eq!(
        sharded.stats.link_hops,
        legacy.stats.link_hops,
        "{label}: link_hops"
    );
    prop_assert_eq!(
        sharded.stats.encapsulated_hops,
        legacy.stats.encapsulated_hops,
        "{label}: encapsulated_hops"
    );
    prop_assert_eq!(
        sharded.stats.link_load,
        legacy.stats.link_load,
        "{label}: link_load"
    );
    prop_assert_eq!(
        sharded.stats.delivered_per_stub,
        legacy.stats.delivered_per_stub,
        "{label}: delivered_per_stub"
    );
    prop_assert_eq!(
        sharded.measurements.iter().collect::<Vec<_>>(),
        legacy.measurements.clone(),
        "{label}: traffic matrix"
    );
    prop_assert_eq!(
        &sharded.proxy_counters,
        &legacy.proxy_counters,
        "{label}: proxy counters"
    );
    prop_assert_eq!(
        &sharded.mbox_counters,
        &legacy.mbox_counters,
        "{label}: middlebox counters"
    );
    prop_assert_eq!(
        &sharded.footprint,
        &legacy.footprint,
        "{label}: state footprint"
    );
    Ok(())
}

#[test]
fn sharded_runs_are_bit_identical_to_legacy() {
    check(
        "sharded_runs_are_bit_identical_to_legacy",
        &Config::with_cases(6),
        |rng: &mut StdRng| {
            let seed = rng.gen_range(1u64..1000);
            let mbox_counts = [
                rng.gen_range(1usize..4),
                rng.gen_range(2usize..6),
                rng.gen_range(2usize..6),
                rng.gen_range(1usize..4),
            ];
            let packets = rng.gen_range(5_000u64..30_000);
            let flow_seed = rng.next_u64();
            // mode packs (strategy, encoding): strategy = mode % 2
            // (HP / Random), label switching when mode >= 2
            let mode = rng.gen_range(0u8..4);
            let shards = rng.gen_range(2usize..6);
            (seed, mbox_counts, packets, flow_seed, mode, shards)
        },
        |&(seed, mbox_counts, packets, flow_seed, mode, shards)| {
            let (strategy_pick, label_switching) = (mode % 2, mode >= 2);
            let cfg = ExperimentConfig {
                mbox_counts,
                ..ExperimentConfig::campus(seed)
            };
            let world = World::build(&cfg);
            let flows = sdm_workload::generate_flows_with_total(
                &world.generated,
                world.controller.addr_plan(),
                &WorkloadConfig {
                    seed: flow_seed,
                    ..Default::default()
                },
                packets,
            );
            let specs = to_flow_specs(&flows, 512);
            // LB needs LP weights and is covered by the pipeline test
            // below; here HP and flow-sticky Random exercise the runtime.
            let strategy = match strategy_pick {
                0 => Steering::HotPotato,
                _ => Steering::Random { salt: flow_seed },
            };
            let options = EnforcementOptions {
                encoding: if label_switching {
                    SteeringEncoding::LabelSwitching
                } else {
                    SteeringEncoding::IpOverIp
                },
                ..Default::default()
            };

            let legacy = legacy_run(&world.controller, strategy, options, &specs);
            let one = world
                .controller
                .run_sharded(strategy, None, options, &specs, 1);
            let many = world
                .controller
                .run_sharded(strategy, None, options, &specs, shards);
            compare(&legacy, &one, "1 shard vs legacy")?;
            compare(&legacy, &many, &format!("{shards} shards vs legacy"))?;
            Ok(())
        },
    );
}

/// The load-balanced strategy (LP weights installed) through the sharded
/// runtime, against the legacy `World::run_strategy` path at every shard
/// count — the exact configuration Figures 4–5 and Table III run.
#[test]
fn sharded_lb_pipeline_matches_legacy_comparison() {
    let world = World::build(&ExperimentConfig::campus(3));
    let flows = world.flows(40_000, 11);
    let legacy = world.compare_strategies(&flows);
    for shards in [1usize, 4] {
        let sharded = world.compare_strategies_sharded(&flows, shards);
        assert_eq!(sharded.hp.loads, legacy.hp.loads, "HP loads, {shards} shards");
        assert_eq!(sharded.rand.loads, legacy.rand.loads, "Rand loads, {shards} shards");
        assert_eq!(sharded.lb.loads, legacy.lb.loads, "LB loads, {shards} shards");
        assert_eq!(sharded.hp.delivered, legacy.hp.delivered);
        assert_eq!(sharded.lb.delivered, legacy.lb.delivered);
        assert_eq!(sharded.hp.link_hops, legacy.hp.link_hops);
        assert_eq!(sharded.lb.link_hops, legacy.lb.link_hops);
        assert_eq!(
            sharded.lb_report.lambda, legacy.lb_report.lambda,
            "LP on merged measurements must see identical input"
        );
    }
}
