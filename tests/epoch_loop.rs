//! Integration tests for the online re-steer control loop (§III.C):
//!
//! * **Determinism** — the same epoch schedule (injection, mid-schedule
//!   failure and restore, per-epoch warm re-solves) produces a
//!   byte-identical transcript across shard counts 1/4 and vector batch
//!   sizes 1/256.
//! * **Stickiness** — a weight update activated between epochs never
//!   re-steers a live flow: the first-hop pins recorded in the flow
//!   tables survive the swap, and re-injecting the same flow population
//!   repeats the previous epoch's per-middlebox load distribution
//!   exactly.

use std::fmt::Write as _;

use sdm::core::{
    shard_of, Controller, Deployment, EnforcementOptions, EpochLoop, KConfig, LbOptions,
    MiddleboxId, MiddleboxSpec,
};
use sdm::netsim::{FiveTuple, Protocol, StubId};
use sdm::policy::{ActionList, NetworkFunction::*, Policy, PolicySet, TrafficDescriptor};

fn controller() -> Controller {
    let plan = sdm::topology::campus::campus(1);
    let mut dep = Deployment::new();
    dep.add(MiddleboxSpec::new(Firewall, plan.cores()[0], 1.0));
    dep.add(MiddleboxSpec::new(Firewall, plan.cores()[4], 1.0));
    dep.add(MiddleboxSpec::new(Firewall, plan.cores()[9], 1.0));
    dep.add(MiddleboxSpec::new(Ids, plan.cores()[2], 1.0));
    dep.add(MiddleboxSpec::new(Ids, plan.cores()[7], 1.0));
    let mut policies = PolicySet::new();
    policies.push(Policy::new(
        TrafficDescriptor::new().dst_port(80),
        ActionList::chain([Firewall]),
    ));
    // A two-function chain so middlebox-to-middlebox steering (and its
    // stickiness pin) is exercised too.
    policies.push(Policy::new(
        TrafficDescriptor::new().dst_port(443),
        ActionList::chain([Firewall, Ids]),
    ));
    Controller::new(plan, dep, policies, KConfig::paper_default())
}

fn flow(c: &Controller, from: u32, to: u32, sp: u16, dport: u16) -> FiveTuple {
    FiveTuple {
        src: c.addr_plan().host(StubId(from), sp as u32),
        dst: c.addr_plan().host(StubId(to), 1),
        src_port: 40000 + sp,
        dst_port: dport,
        proto: Protocol::Tcp,
    }
}

fn specs(c: &Controller, salt: u16, count: u16) -> Vec<sdm::core::FlowSpec> {
    (0..count)
        .map(|i| sdm::core::FlowSpec {
            flow: flow(
                c,
                (i % 4) as u32,
                4 + (i % 3) as u32,
                salt + i,
                if i % 3 == 0 { 443 } else { 80 },
            ),
            packets: 100 + (i as u64 * 13) % 400,
            payload: 512,
        })
        .collect()
}

fn busiest(loads: &[u64]) -> MiddleboxId {
    MiddleboxId(
        loads
            .iter()
            .enumerate()
            .max_by_key(|&(_, l)| l)
            .map(|(i, _)| i as u32)
            .expect("non-empty deployment"),
    )
}

/// Runs a fixed four-epoch schedule — with a data-plane failure after
/// epoch 2 and a restore after epoch 3 — and serializes everything the
/// loop produced: per-epoch reports (cells, volume, lambda, pivots, warm,
/// activated), final per-middlebox loads, delivery and failure-drop
/// counters. f64s are printed with `{:?}` (shortest round-trip), so any
/// bit-level divergence shows up in the transcript.
fn transcript(shards: usize, batch: usize) -> String {
    let c = controller();
    let mut ep = EpochLoop::new(&c, shards, EnforcementOptions::default(), LbOptions::default());
    ep.set_batch_size(batch);
    let mut out = String::new();
    for round in 0..4u16 {
        let flows = specs(&c, 1 + round * 500, 36 + round * 4);
        let r = ep.run_epoch(&flows).expect("epoch must activate");
        writeln!(
            out,
            "epoch {} cells {} volume {:?} lambda {:?} pivots {} warm {} activated {}",
            r.epoch, r.cells, r.volume, r.lambda, r.pivots, r.warm, r.activated
        )
        .unwrap();
        if round == 1 {
            let victim = busiest(&ep.middlebox_loads());
            ep.fail_middlebox(victim);
            writeln!(out, "fail {}", victim.0).unwrap();
        }
        if round == 2 {
            let victim = busiest(&ep.middlebox_loads());
            ep.restore_middlebox(victim);
            writeln!(out, "restore {}", victim.0).unwrap();
        }
    }
    writeln!(out, "loads {:?}", ep.middlebox_loads()).unwrap();
    writeln!(
        out,
        "delivered {} dropped_failed {}",
        ep.delivered(),
        ep.dropped_failed()
    )
    .unwrap();
    out
}

#[test]
fn epoch_schedule_is_shard_and_batch_invariant() {
    let reference = transcript(1, 1);
    assert!(
        reference.contains("warm true"),
        "schedule must exercise the warm-start path:\n{reference}"
    );
    assert!(
        reference.contains("dropped_failed") && !reference.contains("dropped_failed 0"),
        "schedule must exercise the failure path:\n{reference}"
    );
    for (shards, batch) in [(4, 1), (1, 256), (4, 256)] {
        let other = transcript(shards, batch);
        assert_eq!(
            reference, other,
            "transcript diverged at shards={shards} batch={batch}"
        );
    }
}

#[test]
fn live_flows_stay_sticky_across_a_weight_update() {
    for (shards, batch) in [(1, 1), (4, 256)] {
        let c = controller();
        let mut ep =
            EpochLoop::new(&c, shards, EnforcementOptions::default(), LbOptions::default());
        ep.set_batch_size(batch);
        let base = specs(&c, 1, 40);

        // Epoch 1 runs weightless (bootstrap) and activates LP weights;
        // every flow's first hop is now pinned in its flow-table entry.
        let r1 = ep.run_epoch(&base).unwrap();
        assert!(r1.activated, "epoch 1 must install weights");
        let n = ep.shards().len();
        let pins_before: Vec<Option<u32>> = base
            .iter()
            .map(|s| {
                let enf = &ep.shards()[shard_of(&s.flow, n)];
                let src_stub = c.addr_plan().stub_of(s.flow.src).expect("stub-homed source");
                let st = enf.proxy_state(src_stub);
                let pin = st.lock().flows.pinned_next(&s.flow);
                assert!(pin.is_some(), "epoch-1 flow must have been pinned");
                pin
            })
            .collect();
        let after1 = ep.middlebox_loads();

        // Epoch 2 re-injects the *same* flow population under the *new*
        // weights. Stickiness: pins are unchanged and the per-middlebox
        // load increment exactly repeats epoch 1.
        let r2 = ep.run_epoch(&base).unwrap();
        assert!(r2.activated);
        let pins_after: Vec<Option<u32>> = base
            .iter()
            .map(|s| {
                let enf = &ep.shards()[shard_of(&s.flow, n)];
                let src_stub = c.addr_plan().stub_of(s.flow.src).expect("stub-homed source");
                let st = enf.proxy_state(src_stub);
                let guard = st.lock();
                guard.flows.pinned_next(&s.flow)
            })
            .collect();
        assert_eq!(
            pins_before, pins_after,
            "weight update must not re-pin live flows (shards={shards} batch={batch})"
        );
        let after2 = ep.middlebox_loads();
        let delta2: Vec<u64> = after2.iter().zip(&after1).map(|(a, b)| a - b).collect();
        assert_eq!(
            delta2, after1,
            "sticky re-injection must repeat the epoch-1 load split (shards={shards} batch={batch})"
        );
    }
}
