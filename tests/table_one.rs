//! A narrative integration test: the paper's Table I, enforced end to end
//! on the campus network for all four traffic directions it describes.

use sdm::core::{
    Controller, Deployment, EnforcementOptions, KConfig, MiddleboxSpec, Strategy,
};
use sdm::netsim::{FiveTuple, Packet, Prefix, Protocol, StubId};
use sdm::policy::{ActionList, NetworkFunction, Policy, PolicySet, TrafficDescriptor};
use sdm::topology::campus::campus;

use NetworkFunction::*;

/// Table I with `subnet a` = the whole 10.0.0.0/8 enterprise space.
fn table_one() -> PolicySet {
    let a: Prefix = "10.0.0.0/8".parse().unwrap();
    let mut set = PolicySet::new();
    set.push(Policy::permit(
        TrafficDescriptor::new().src_prefix(a).dst_prefix(a).dst_port(80),
    ));
    set.push(Policy::permit(
        TrafficDescriptor::new().src_prefix(a).dst_prefix(a).src_port(80),
    ));
    set.push(Policy::new(
        TrafficDescriptor::new().dst_prefix(a).dst_port(80),
        ActionList::chain([Firewall, Ids]),
    ));
    set.push(Policy::new(
        TrafficDescriptor::new().src_prefix(a).src_port(80),
        ActionList::chain([Ids, Firewall]),
    ));
    set.push(Policy::new(
        TrafficDescriptor::new().src_prefix(a).dst_port(80),
        ActionList::chain([Firewall, Ids, WebProxy]),
    ));
    set.push(Policy::new(
        TrafficDescriptor::new().dst_prefix(a).src_port(80),
        ActionList::chain([WebProxy, Ids, Firewall]),
    ));
    set
}

#[test]
fn table_one_all_four_directions() {
    let plan = campus(6);
    let gw = plan.gateways()[0];
    let mut dep = Deployment::new();
    let fw = dep.add(MiddleboxSpec::new(Firewall, plan.cores()[0], 1.0));
    let ids = dep.add(MiddleboxSpec::new(Ids, plan.cores()[5], 1.0));
    let wp = dep.add(MiddleboxSpec::new(WebProxy, plan.cores()[10], 1.0));
    let c = Controller::new(plan, dep, table_one(), KConfig::uniform(1));
    let mut enf = c.enforcement(Strategy::HotPotato, None, EnforcementOptions::default());

    let host = |s: u32| c.addr_plan().host(StubId(s), 1);
    let external: sdm::netsim::Ipv4Addr = "93.184.216.34".parse().unwrap();

    // 1. internal web client -> internal web server: permitted untouched.
    enf.inject_flow(
        FiveTuple { src: host(0), dst: host(4), src_port: 50_000, dst_port: 80, proto: Protocol::Tcp },
        100,
        400,
    );
    // 2. internal web server -> internal client (return): also permitted.
    enf.inject_flow(
        FiveTuple { src: host(4), dst: host(0), src_port: 80, dst_port: 50_000, proto: Protocol::Tcp },
        100,
        400,
    );
    // 3. outbound web access to an external server: FW -> IDS -> WP.
    enf.inject_flow(
        FiveTuple { src: host(2), dst: external, src_port: 51_000, dst_port: 80, proto: Protocol::Tcp },
        100,
        400,
    );
    // 4. inbound web access from an external host: FW -> IDS (arrives at a
    //    gateway like real Internet traffic).
    enf.sim_mut().inject_at_router(
        gw,
        Packet::with_weight(
            FiveTuple { src: external, dst: host(7), src_port: 52_000, dst_port: 80, proto: Protocol::Tcp },
            400,
            100,
        ),
    );
    enf.run();

    let stats = enf.sim().stats();
    assert_eq!(stats.delivered, 300, "flows 1, 2 and 4 end inside");
    assert_eq!(stats.delivered_external, 100, "flow 3 leaves via a gateway");

    let loads = enf.middlebox_loads();
    // FW: outbound (3) + inbound (4) = 200; internal flows never touch it.
    assert_eq!(loads[fw.index()], 200, "FW load");
    // IDS: same two flows.
    assert_eq!(loads[ids.index()], 200, "IDS load");
    // WP: outbound only.
    assert_eq!(loads[wp.index()], 100, "WP load");

    // Traffic ordering spot-check via label tables is covered elsewhere;
    // here verify the proxies saw what they should.
    let p0 = enf.proxy_state(StubId(0));
    assert_eq!(p0.lock().counters.permitted, 100, "stub 0's web was permitted");
    let p7 = enf.proxy_state(StubId(7));
    assert_eq!(p7.lock().counters.inbound, 100, "stub 7 received the inbound flow");
}

/// The same world under load balancing and label switching stays correct
/// (smoke across feature combinations).
#[test]
fn table_one_with_lb_and_label_switching() {
    let plan = campus(6);
    let mut dep = Deployment::new();
    dep.add(MiddleboxSpec::new(Firewall, plan.cores()[0], 1.0));
    dep.add(MiddleboxSpec::new(Firewall, plan.cores()[7], 1.0));
    dep.add(MiddleboxSpec::new(Ids, plan.cores()[5], 1.0));
    dep.add(MiddleboxSpec::new(WebProxy, plan.cores()[10], 1.0));
    let c = Controller::new(plan, dep, table_one(), KConfig::uniform(2));

    // measurement pass
    let mut measure = c.enforcement(Strategy::HotPotato, None, EnforcementOptions::default());
    for i in 0..60u16 {
        let ft = FiveTuple {
            src: c.addr_plan().host(StubId((i % 10) as u32), 2),
            dst: "93.184.216.34".parse().unwrap(),
            src_port: 53_000 + i,
            dst_port: 80,
            proto: Protocol::Tcp,
        };
        measure.inject_flow(ft, 10, 400);
    }
    measure.run();
    let (w, _) = c
        .solve_load_balanced(&measure.measurements(), sdm::core::LbOptions::default())
        .unwrap();

    let mut enf = c.enforcement(
        Strategy::LoadBalanced,
        Some(w),
        EnforcementOptions {
            encoding: sdm::core::SteeringEncoding::LabelSwitching,
            ..Default::default()
        },
    );
    for i in 0..60u16 {
        let ft = FiveTuple {
            src: c.addr_plan().host(StubId((i % 10) as u32), 2),
            dst: "93.184.216.34".parse().unwrap(),
            src_port: 53_000 + i,
            dst_port: 80,
            proto: Protocol::Tcp,
        };
        enf.inject_flow_packets(ft, 5, 400, sdm::netsim::SimTime(i as u64 * 10), 300);
    }
    enf.run();
    assert_eq!(enf.sim().stats().delivered_external, 300);
    // both firewalls participate under LB
    let loads = enf.middlebox_loads();
    assert!(loads[0] > 0 && loads[1] > 0, "LB splits FWs: {loads:?}");
}
